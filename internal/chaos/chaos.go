// Package chaos is the deterministic fault-injection layer of the
// simulated cluster. A Plan describes which faults to inject — message
// delivery delays, unexpected-queue reordering, transient send
// failures with retry/backoff, sender wall-clock jitter, rank
// crash-stop, and thread stalls — and an Injector turns the plan into
// per-decision verdicts the runtime substrates (internal/mpi,
// internal/omp) consult at their injection hooks.
//
// Determinism: every decision is a pure hash of
// (plan seed, fault stream, rank, thread, per-thread decision index),
// never of wall-clock time or goroutine interleaving. Two runs with
// the same plan therefore inject the same faults at the same program
// points, even though the host schedule differs — which is what makes
// chaos runs replayable and the soak harness's metamorphic assertions
// meaningful.
//
// Legality: the message perturbations stay inside MPI semantics. Extra
// delivery latency and sender-side wall jitter only shift virtual or
// wall time; queue reordering moves a message ahead of queued messages
// from *other* sources only, preserving the non-overtaking rule
// between every (sender, receiver) pair; transient send failures are
// retried until they succeed, charging virtual backoff. A plan whose
// CrashAfterCalls is zero is therefore a pure schedule perturbation: a
// correct program must produce the same verdicts under it (see
// docs/ROBUSTNESS.md).
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"home/internal/obs"
)

// Plan is a declarative fault-injection plan. The zero value injects
// nothing; New fills defaults for the knobs a enabled fault family
// leaves zero.
type Plan struct {
	// Seed drives every injection decision. Plans with equal fields
	// and equal seeds inject identically.
	Seed int64

	// DelayProb is the per-send probability of extra delivery latency,
	// uniform in [1, MaxDelayNs] virtual ns (default 50µs).
	DelayProb  float64
	MaxDelayNs int64

	// ReorderProb is the per-send probability that the message, if it
	// ends up on the receiver's unexpected-message queue, is placed
	// ahead of queued messages from other sources (same-source order is
	// always preserved — the MPI non-overtaking rule).
	ReorderProb float64

	// SendFailProb is the per-send probability of transient failure;
	// the sender retries up to MaxRetries times (default 3), charging
	// RetryBackoffNs virtual ns per attempt (default 5µs), and always
	// succeeds in the end.
	SendFailProb   float64
	MaxRetries     int
	RetryBackoffNs int64

	// JitterProb is the per-send probability of a wall-clock pause of
	// up to JitterWall (default 200µs) before the send executes. The
	// pause perturbs the host schedule — which goroutine delivers
	// first — creating unexpected-queue pressure without touching
	// virtual time.
	JitterProb float64
	JitterWall time.Duration

	// CrashRank and CrashAfterCalls inject a crash-stop: CrashRank
	// fails permanently during its CrashAfterCalls-th MPI call (the
	// call itself returns the failure, so crash=R@1 fires on R's very
	// first call). CrashAfterCalls == 0 disables the crash.
	CrashRank       int
	CrashAfterCalls int64

	// StallProb is the per-decision-point probability that a thread
	// stalls: StallNs virtual ns (default 100µs) plus a StallWall
	// wall-clock pause (default 2ms) during which the thread counts as
	// transiently blocked, exercising the deadlock watchdog's grace
	// logic.
	StallProb float64
	StallNs   int64
	StallWall time.Duration

	// RMAProb is the per-RMA-operation probability of extra virtual
	// latency before the window access, uniform in [1, MaxRMADelayNs]
	// (default 30µs). Within a fence epoch RMA operations are
	// unordered, so the delay legally reorders Put/Get/Accumulate
	// completions without changing epoch semantics.
	RMAProb       float64
	MaxRMADelayNs int64
}

// Default knob values filled in by New for enabled fault families.
const (
	DefaultMaxDelayNs     = 50_000
	DefaultMaxRetries     = 3
	DefaultRetryBackoffNs = 5_000
	DefaultJitterWall     = 200 * time.Microsecond
	DefaultStallNs        = 100_000
	DefaultStallWall      = 2 * time.Millisecond
	DefaultMaxRMADelayNs  = 30_000
)

// CrashEnabled reports whether the plan injects a crash-stop.
func (p *Plan) CrashEnabled() bool { return p != nil && p.CrashAfterCalls > 0 }

// LegalOnly reports whether the plan is a pure schedule perturbation
// (no crash-stop): verdicts must be stable under it.
func (p *Plan) LegalOnly() bool { return !p.CrashEnabled() }

// String renders the plan in ParseSpec syntax.
func (p *Plan) String() string {
	if p == nil {
		return "none"
	}
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("delay", p.DelayProb)
	add("reorder", p.ReorderProb)
	add("fail", p.SendFailProb)
	add("jitter", p.JitterProb)
	add("stall", p.StallProb)
	add("rma", p.RMAProb)
	if p.CrashEnabled() {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", p.CrashRank, p.CrashAfterCalls))
	}
	return strings.Join(parts, ",")
}

// Perturb returns the default legal-perturbation plan: delays,
// reorders, transient send failures, sender jitter and short stalls,
// no crash. It is the plan `-chaos seed=N` selects.
func Perturb(seed int64) *Plan {
	return &Plan{
		Seed:         seed,
		DelayProb:    0.25,
		ReorderProb:  0.25,
		SendFailProb: 0.15,
		JitterProb:   0.20,
		StallProb:    0.05,
		RMAProb:      0.20,
	}
}

// Crash returns the Perturb plan plus a crash-stop of the given rank
// during its n-th MPI call (n is 1-based).
func Crash(seed int64, rank int, n int64) *Plan {
	p := Perturb(seed)
	p.CrashRank = rank
	p.CrashAfterCalls = n
	return p
}

// ParseSpec parses the -chaos flag syntax: comma-separated key=value
// pairs. Keys: seed=N, delay=P, delayns=N, reorder=P, fail=P,
// retries=N, backoffns=N, jitter=P, jitterus=N, stall=P, stallns=N,
// stallus=N (wall), rma=P, rmans=N, crash=RANK@CALLS. A spec
// containing only seed=N
// (or the bare form "N") yields Perturb(N); an explicit fault key
// builds the plan from scratch so specs compose predictably.
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Perturb(1), nil
	}
	if n, err := strconv.ParseInt(spec, 10, 64); err == nil {
		return Perturb(n), nil
	}
	p := &Plan{}
	seed := int64(1)
	seedOnly := true
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: bad spec entry %q (want key=value)", part)
		}
		prob := func() (float64, error) {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, fmt.Errorf("chaos: %s wants a probability in [0,1], got %q", k, v)
			}
			return f, nil
		}
		num := func() (int64, error) {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("chaos: %s wants a non-negative integer, got %q", k, v)
			}
			return n, nil
		}
		var err error
		switch k {
		case "seed":
			seed, err = num()
		case "delay":
			seedOnly = false
			p.DelayProb, err = prob()
		case "delayns":
			seedOnly = false
			p.MaxDelayNs, err = num()
		case "reorder":
			seedOnly = false
			p.ReorderProb, err = prob()
		case "fail":
			seedOnly = false
			p.SendFailProb, err = prob()
		case "retries":
			seedOnly = false
			var n int64
			n, err = num()
			p.MaxRetries = int(n)
		case "backoffns":
			seedOnly = false
			p.RetryBackoffNs, err = num()
		case "jitter":
			seedOnly = false
			p.JitterProb, err = prob()
		case "jitterus":
			seedOnly = false
			var n int64
			n, err = num()
			p.JitterWall = time.Duration(n) * time.Microsecond
		case "stall":
			seedOnly = false
			p.StallProb, err = prob()
		case "stallns":
			seedOnly = false
			p.StallNs, err = num()
		case "stallus":
			seedOnly = false
			var n int64
			n, err = num()
			p.StallWall = time.Duration(n) * time.Microsecond
		case "rma":
			seedOnly = false
			p.RMAProb, err = prob()
		case "rmans":
			seedOnly = false
			p.MaxRMADelayNs, err = num()
		case "crash":
			seedOnly = false
			rank, calls, ok := strings.Cut(v, "@")
			if !ok {
				return nil, fmt.Errorf("chaos: crash wants RANK@CALLS, got %q", v)
			}
			r, err1 := strconv.Atoi(rank)
			n, err2 := strconv.ParseInt(calls, 10, 64)
			if err1 != nil || err2 != nil || r < 0 || n < 1 {
				return nil, fmt.Errorf("chaos: crash wants RANK@CALLS, got %q", v)
			}
			p.CrashRank, p.CrashAfterCalls = r, n
		default:
			return nil, fmt.Errorf("chaos: unknown spec key %q", k)
		}
		if err != nil {
			return nil, err
		}
	}
	if seedOnly {
		return Perturb(seed), nil
	}
	p.Seed = seed
	return p, nil
}

// Fault streams: each fault family rolls on its own stream so enabling
// one family never shifts another's decisions.
const (
	streamDelay = iota + 1
	streamDelayAmt
	streamReorder
	streamFail
	streamFailAmt
	streamJitter
	streamJitterAmt
	streamStall
	streamRMA
	streamRMAAmt
)

// SendFault is the verdict for one point-to-point send.
type SendFault struct {
	// DelayNs is extra virtual delivery latency (0 = none).
	DelayNs int64
	// Reorder asks the receiver to queue the message ahead of queued
	// messages from other sources.
	Reorder bool
	// Retries is the number of transient failures before the send
	// succeeds; each charges BackoffNs virtual ns on top of the MPI
	// call cost.
	Retries   int
	BackoffNs int64
	// JitterWall is a wall-clock pause taken before the send.
	JitterWall time.Duration
}

// Stall is the verdict for one stall decision point.
type Stall struct {
	// VirtualNs is charged to the thread's virtual clock.
	VirtualNs int64
	// Wall is the wall-clock pause, taken as a transient block so the
	// deadlock watchdog can tell it from a genuine hang.
	Wall time.Duration
}

// MsgID identifies one point-to-point message by its sending thread
// and the sender's per-thread schedule-point index at the send — a
// host-schedule-independent identity used by record/replay to force
// message-match resolutions. The zero MsgID (Seq == 0; real stamps
// are always >= 1) means "no specific message".
type MsgID struct {
	Rank int
	TID  int
	Seq  uint64
}

// Zero reports whether the MsgID carries no message identity.
func (m MsgID) Zero() bool { return m.Seq == 0 }

// CollOrder pins one participant's collective-instance assignment: the
// communicator-local instance the arrival joined, its arrival index
// within that instance, and — for MPI_Comm_dup — the communicator id
// the completed instance allocated. Recording these for every
// *completed* instance (abandoned instances record nothing) makes the
// release time of every collective, and hence virtual time, a
// deterministic function of the schedule.
type CollOrder struct {
	// Comm is the communicator the instance ran on.
	Comm int
	// Seq is the instance's 1-based number within the communicator.
	Seq int64
	// Ord is the participant's 1-based arrival index in the instance.
	Ord int
	// NewComm is the duplicated communicator id allocated by a
	// completed Comm_dup instance; -1 for every other collective.
	NewComm int
}

// Recorder receives every realized fault decision and nondeterministic
// resolution during a recorded chaos run (implemented by
// internal/sched). Implementations must be safe for concurrent use:
// match resolutions are recorded from the *sender's* goroutine.
type Recorder interface {
	// RecordSend logs a realized (non-trivial) send fault at chaos
	// decision point (rank, tid, seq).
	RecordSend(rank, tid int, seq uint64, f SendFault)
	// RecordStall logs a realized thread stall.
	RecordStall(rank, tid int, seq uint64, s Stall)
	// RecordRMADelay logs a realized RMA delay.
	RecordRMADelay(rank, tid int, seq uint64, delayNs int64)
	// RecordFail logs that the operation at schedule point (rank, tid,
	// seq) observed the failure of rank dead.
	RecordFail(rank, tid int, seq uint64, dead int)
	// RecordAbort logs that the OpenMP construct at the schedule point
	// was abandoned by a crash-stop.
	RecordAbort(rank, tid int, seq uint64)
	// RecordMatch logs which message satisfied the receive or probe
	// posted at the schedule point.
	RecordMatch(rank, tid int, seq uint64, m MsgID)
	// RecordPoll logs a successful non-blocking poll (MPI_Test,
	// MPI_Iprobe) at the schedule point; m is the matched message for
	// probes, zero for request-completion tests.
	RecordPoll(rank, tid int, seq uint64, m MsgID)
	// RecordCrash logs that the given rank crash-stopped.
	RecordCrash(rank int)
	// RecordCollJoin logs the collective-instance assignment of the
	// arrival at schedule point (rank, tid, seq). Called once per
	// participant when an instance *completes* (from the completing
	// participant's goroutine); abandoned instances are never logged.
	RecordCollJoin(rank, tid int, seq uint64, o CollOrder)
	// RecordLockGrant logs that the OpenMP lock acquire at the schedule
	// point was granted as the lock's ticket-th acquisition (tickets
	// are 1-based and count grants per lock object).
	RecordLockGrant(rank, tid int, seq uint64, ticket uint64)
	// RecordSingleWin logs that the thread won the first-arriver
	// election of the `single` construct at its ord-th construct
	// encounter (the key is the member-local construct ordinal, not a
	// schedule point — elections allocate no new points, keeping v1
	// per-thread point sequences valid).
	RecordSingleWin(rank, tid int, ord uint64)
	// RecordChunk logs the iteration range [base, end) the thread
	// claimed from a dynamic/guided worksharing loop; seq composes the
	// construct ordinal with the thread's claim index (see
	// internal/omp).
	RecordChunk(rank, tid int, seq uint64, base, end int64)
}

// Source answers the same decision points from a recorded schedule
// during replay (implemented by internal/sched). A false/absent
// answer means "nothing was recorded here": no fault, no failure, no
// match.
type Source interface {
	SendFault(rank, tid int, seq uint64) (SendFault, bool)
	Stall(rank, tid int, seq uint64) (Stall, bool)
	RMADelay(rank, tid int, seq uint64) (int64, bool)
	Fail(rank, tid int, seq uint64) (dead int, ok bool)
	Abort(rank, tid int, seq uint64) bool
	Match(rank, tid int, seq uint64) (MsgID, bool)
	Poll(rank, tid int, seq uint64) (MsgID, bool)
	// Crashes lists the ranks that crash-stopped in the recorded run;
	// the world pre-marks them (without failure propagation) so replay
	// reproduces DeadRanks exactly from the recorded fail/abort records.
	Crashes() []int
	// CollJoin returns the recorded collective-instance assignment at
	// the schedule point, if any.
	CollJoin(rank, tid int, seq uint64) (CollOrder, bool)
	// LockGrant returns the recorded lock-acquisition ticket at the
	// schedule point, if any.
	LockGrant(rank, tid int, seq uint64) (uint64, bool)
	// SingleWin reports whether the thread won the recorded `single`
	// election at its ord-th construct encounter.
	SingleWin(rank, tid int, ord uint64) bool
	// Chunk returns the recorded dynamic/guided loop claim at the key,
	// if any.
	Chunk(rank, tid int, seq uint64) (base, end int64, ok bool)
	// PinsOrders reports whether the schedule pins membership and
	// acquisition orders (format v2+). Streams recorded before the
	// order families existed replay with the older report-identity
	// guarantee: the substrates fall back to live resolution instead of
	// expecting a record at every order decision.
	PinsOrders() bool
}

// Injector evaluates a Plan. All methods are safe on a nil receiver
// (nil = chaos off) and on concurrent use.
type Injector struct {
	plan  Plan
	stats injStats
	rec   Recorder
	src   Source
}

// injStats caches the chaos.* observability handles (nil-safe, same
// pattern as the substrates' stat caches).
type injStats struct {
	delays      *obs.Counter
	delayVns    *obs.Counter
	reorders    *obs.Counter
	sendRetries *obs.Counter
	jitters     *obs.Counter
	stalls      *obs.Counter
	stallVns    *obs.Counter
	crashStops  *obs.Counter
	rmaDelays   *obs.Counter
	rmaDelayVns *obs.Counter
}

// New builds an Injector for the plan, resolving observability
// handles from reg (both may be nil: a nil plan returns a nil
// Injector, a nil registry disables counting).
func New(plan *Plan, reg *obs.Registry) *Injector {
	if plan == nil {
		return nil
	}
	p := *plan
	if p.MaxDelayNs <= 0 {
		p.MaxDelayNs = DefaultMaxDelayNs
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = DefaultMaxRetries
	}
	if p.RetryBackoffNs <= 0 {
		p.RetryBackoffNs = DefaultRetryBackoffNs
	}
	if p.JitterWall <= 0 {
		p.JitterWall = DefaultJitterWall
	}
	if p.StallNs <= 0 {
		p.StallNs = DefaultStallNs
	}
	if p.StallWall <= 0 {
		p.StallWall = DefaultStallWall
	}
	if p.MaxRMADelayNs <= 0 {
		p.MaxRMADelayNs = DefaultMaxRMADelayNs
	}
	return &Injector{
		plan: p,
		stats: injStats{
			delays:      reg.Counter("chaos.msg_delays"),
			delayVns:    reg.Counter("chaos.msg_delay_vns"),
			reorders:    reg.Counter("chaos.msg_reorders"),
			sendRetries: reg.Counter("chaos.send_retries"),
			jitters:     reg.Counter("chaos.send_jitters"),
			stalls:      reg.Counter("chaos.stalls"),
			stallVns:    reg.Counter("chaos.stall_vns"),
			crashStops:  reg.Counter("chaos.crash_stops"),
			rmaDelays:   reg.Counter("chaos.rma_delays"),
			rmaDelayVns: reg.Counter("chaos.rma_delay_vns"),
		},
	}
}

// SetRecorder attaches a schedule recorder: every realized fault
// decision and observed nondeterministic resolution is logged to it.
func (in *Injector) SetRecorder(r Recorder) {
	if in != nil {
		in.rec = r
	}
}

// SetSource attaches a schedule source, switching the injector to
// replay mode: fault decisions are read from the recorded schedule
// instead of hashing the plan seed, and the runtime substrates force
// the recorded failure observations and match resolutions.
func (in *Injector) SetSource(s Source) {
	if in != nil {
		in.src = s
	}
}

// ReplayCrashes lists the crash-stopped ranks of the replayed
// schedule (nil when not replaying).
func (in *Injector) ReplayCrashes() []int {
	if in == nil || in.src == nil {
		return nil
	}
	return in.src.Crashes()
}

// Recording reports whether a schedule recorder is attached.
func (in *Injector) Recording() bool { return in != nil && in.rec != nil }

// Replaying reports whether the injector replays a recorded schedule.
func (in *Injector) Replaying() bool { return in != nil && in.src != nil }

// SchedActive reports whether the run is either recording or
// replaying a schedule — the substrates then allocate schedule points
// (sim.Ctx.NextSchedSeq) at every nondeterministic resolution site.
func (in *Injector) SchedActive() bool { return in.Recording() || in.Replaying() }

// Plan returns a copy of the injector's plan with defaults filled
// (zero Plan if the injector is nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// roll hashes (seed, stream, rank, tid, seq) into a uniform uint64
// (splitmix64 over the mixed key).
func (in *Injector) roll(stream, rank, tid int, seq uint64) uint64 {
	z := uint64(in.plan.Seed)
	z ^= 0x9e3779b97f4a7c15 * (uint64(stream)<<48 ^ uint64(rank)<<32 ^ uint64(tid)<<24 ^ (seq + 1))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hit converts a roll to a probability verdict.
func (in *Injector) hit(prob float64, stream, rank, tid int, seq uint64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return float64(in.roll(stream, rank, tid, seq)>>11)/(1<<53) < prob
}

// amount draws a deterministic value in [1, max].
func (in *Injector) amount(max int64, stream, rank, tid int, seq uint64) int64 {
	if max <= 1 {
		return max
	}
	return 1 + int64(in.roll(stream, rank, tid, seq)%uint64(max))
}

// SendFault returns the faults to apply to the send identified by
// (rank, tid, seq). seq is the caller thread's decision index
// (sim.Ctx.NextChaosSeq), which makes the verdict independent of the
// host schedule.
func (in *Injector) SendFault(rank, tid int, seq uint64) SendFault {
	if in == nil {
		return SendFault{}
	}
	if in.src != nil {
		f, ok := in.src.SendFault(rank, tid, seq)
		if !ok {
			return SendFault{}
		}
		// Wall jitter exists only to provoke host-schedule races; in
		// replay the resolutions are forced, so don't waste the time.
		f.JitterWall = 0
		in.countSend(f)
		return f
	}
	var f SendFault
	if in.hit(in.plan.DelayProb, streamDelay, rank, tid, seq) {
		f.DelayNs = in.amount(in.plan.MaxDelayNs, streamDelayAmt, rank, tid, seq)
	}
	if in.hit(in.plan.ReorderProb, streamReorder, rank, tid, seq) {
		f.Reorder = true
	}
	if in.hit(in.plan.SendFailProb, streamFail, rank, tid, seq) {
		f.Retries = int(in.amount(int64(in.plan.MaxRetries), streamFailAmt, rank, tid, seq))
		f.BackoffNs = in.plan.RetryBackoffNs
	}
	if in.hit(in.plan.JitterProb, streamJitter, rank, tid, seq) {
		us := in.amount(int64(in.plan.JitterWall/time.Microsecond), streamJitterAmt, rank, tid, seq)
		f.JitterWall = time.Duration(us) * time.Microsecond
	}
	in.countSend(f)
	if in.rec != nil && f != (SendFault{}) {
		in.rec.RecordSend(rank, tid, seq, f)
	}
	return f
}

// countSend charges the observability counters for a realized send
// fault (shared by the seed-hash and replay paths).
func (in *Injector) countSend(f SendFault) {
	if f.DelayNs > 0 {
		in.stats.delays.Inc()
		in.stats.delayVns.Add(f.DelayNs)
	}
	if f.Reorder {
		in.stats.reorders.Inc()
	}
	if f.Retries > 0 {
		in.stats.sendRetries.Add(int64(f.Retries))
	}
	if f.JitterWall > 0 {
		in.stats.jitters.Inc()
	}
}

// StallAt returns the stall to take at decision point (rank, tid,
// seq), if any.
func (in *Injector) StallAt(rank, tid int, seq uint64) (Stall, bool) {
	if in == nil {
		return Stall{}, false
	}
	if in.src != nil {
		s, ok := in.src.Stall(rank, tid, seq)
		if !ok {
			return Stall{}, false
		}
		s.Wall = 0 // as with jitter: host-race provocation is pointless in replay
		in.stats.stalls.Inc()
		in.stats.stallVns.Add(s.VirtualNs)
		return s, true
	}
	if !in.hit(in.plan.StallProb, streamStall, rank, tid, seq) {
		return Stall{}, false
	}
	in.stats.stalls.Inc()
	in.stats.stallVns.Add(in.plan.StallNs)
	s := Stall{VirtualNs: in.plan.StallNs, Wall: in.plan.StallWall}
	if in.rec != nil {
		in.rec.RecordStall(rank, tid, seq, s)
	}
	return s, true
}

// RMADelay returns the extra virtual latency to charge before the RMA
// operation at decision point (rank, tid, seq), if any.
func (in *Injector) RMADelay(rank, tid int, seq uint64) (int64, bool) {
	if in == nil {
		return 0, false
	}
	if in.src != nil {
		d, ok := in.src.RMADelay(rank, tid, seq)
		if !ok {
			return 0, false
		}
		in.stats.rmaDelays.Inc()
		in.stats.rmaDelayVns.Add(d)
		return d, true
	}
	if !in.hit(in.plan.RMAProb, streamRMA, rank, tid, seq) {
		return 0, false
	}
	d := in.amount(in.plan.MaxRMADelayNs, streamRMAAmt, rank, tid, seq)
	in.stats.rmaDelays.Inc()
	in.stats.rmaDelayVns.Add(d)
	if in.rec != nil {
		in.rec.RecordRMADelay(rank, tid, seq, d)
	}
	return d, true
}

// ObserveFail records that the operation at schedule point (rank,
// tid, seq) observed the failure of rank dead.
func (in *Injector) ObserveFail(rank, tid int, seq uint64, dead int) {
	if in != nil && in.rec != nil {
		in.rec.RecordFail(rank, tid, seq, dead)
	}
}

// ReplayFail returns the recorded failure observation at the schedule
// point, if any.
func (in *Injector) ReplayFail(rank, tid int, seq uint64) (int, bool) {
	if in == nil || in.src == nil {
		return 0, false
	}
	return in.src.Fail(rank, tid, seq)
}

// ObserveAbort records a crash-stop abort of an OpenMP construct.
func (in *Injector) ObserveAbort(rank, tid int, seq uint64) {
	if in != nil && in.rec != nil {
		in.rec.RecordAbort(rank, tid, seq)
	}
}

// ReplayAbort reports whether an abort was recorded at the point.
func (in *Injector) ReplayAbort(rank, tid int, seq uint64) bool {
	return in != nil && in.src != nil && in.src.Abort(rank, tid, seq)
}

// ObserveMatch records which message satisfied the receive or probe
// posted at the schedule point. Safe to call from the sender's
// goroutine (the Recorder contract requires concurrency safety).
func (in *Injector) ObserveMatch(rank, tid int, seq uint64, m MsgID) {
	if in != nil && in.rec != nil {
		in.rec.RecordMatch(rank, tid, seq, m)
	}
}

// ReplayMatch returns the recorded match resolution for the receive
// or probe posted at the schedule point, if any.
func (in *Injector) ReplayMatch(rank, tid int, seq uint64) (MsgID, bool) {
	if in == nil || in.src == nil {
		return MsgID{}, false
	}
	return in.src.Match(rank, tid, seq)
}

// ObservePoll records a successful non-blocking poll.
func (in *Injector) ObservePoll(rank, tid int, seq uint64, m MsgID) {
	if in != nil && in.rec != nil {
		in.rec.RecordPoll(rank, tid, seq, m)
	}
}

// ReplayPoll returns the recorded poll outcome at the point, if any.
func (in *Injector) ReplayPoll(rank, tid int, seq uint64) (MsgID, bool) {
	if in == nil || in.src == nil {
		return MsgID{}, false
	}
	return in.src.Poll(rank, tid, seq)
}

// ReplayPinsOrders reports whether the attached schedule pins
// collective-membership and lock/election orders (a v2+ stream). The
// substrates force those orders only when this is true; a v1 stream
// replays with the original report-identity guarantee.
func (in *Injector) ReplayPinsOrders() bool {
	return in != nil && in.src != nil && in.src.PinsOrders()
}

// ObserveCollJoin records a participant's collective-instance
// assignment (called at instance completion, possibly from another
// participant's goroutine — the Recorder contract requires
// concurrency safety).
func (in *Injector) ObserveCollJoin(rank, tid int, seq uint64, o CollOrder) {
	if in != nil && in.rec != nil {
		in.rec.RecordCollJoin(rank, tid, seq, o)
	}
}

// ReplayCollJoin returns the recorded collective-instance assignment
// at the schedule point, if any.
func (in *Injector) ReplayCollJoin(rank, tid int, seq uint64) (CollOrder, bool) {
	if in == nil || in.src == nil {
		return CollOrder{}, false
	}
	return in.src.CollJoin(rank, tid, seq)
}

// ObserveLockGrant records a granted lock acquisition's ticket.
func (in *Injector) ObserveLockGrant(rank, tid int, seq uint64, ticket uint64) {
	if in != nil && in.rec != nil {
		in.rec.RecordLockGrant(rank, tid, seq, ticket)
	}
}

// ReplayLockGrant returns the recorded acquisition ticket at the
// schedule point, if any.
func (in *Injector) ReplayLockGrant(rank, tid int, seq uint64) (uint64, bool) {
	if in == nil || in.src == nil {
		return 0, false
	}
	return in.src.LockGrant(rank, tid, seq)
}

// ObserveSingleWin records a won `single` first-arriver election.
func (in *Injector) ObserveSingleWin(rank, tid int, ord uint64) {
	if in != nil && in.rec != nil {
		in.rec.RecordSingleWin(rank, tid, ord)
	}
}

// ReplaySingleWin reports whether the thread won the recorded
// election at its ord-th construct encounter.
func (in *Injector) ReplaySingleWin(rank, tid int, ord uint64) bool {
	return in != nil && in.src != nil && in.src.SingleWin(rank, tid, ord)
}

// ObserveChunk records a dynamic/guided loop claim.
func (in *Injector) ObserveChunk(rank, tid int, seq uint64, base, end int64) {
	if in != nil && in.rec != nil {
		in.rec.RecordChunk(rank, tid, seq, base, end)
	}
}

// ReplayChunk returns the recorded loop claim at the key, if any.
func (in *Injector) ReplayChunk(rank, tid int, seq uint64) (base, end int64, ok bool) {
	if in == nil || in.src == nil {
		return 0, 0, false
	}
	return in.src.Chunk(rank, tid, seq)
}

// ObserveCrash records that a rank crash-stopped.
func (in *Injector) ObserveCrash(rank int) {
	if in != nil && in.rec != nil {
		in.rec.RecordCrash(rank)
	}
}

// CrashPoint returns the 1-based index of the MPI call during which
// the given rank crash-stops, or -1 when the rank never crashes.
func (in *Injector) CrashPoint(rank int) int64 {
	if in == nil || in.plan.CrashAfterCalls <= 0 || in.plan.CrashRank != rank {
		return -1
	}
	return in.plan.CrashAfterCalls
}

// CountCrash records that a crash-stop fired.
func (in *Injector) CountCrash() {
	if in != nil {
		in.stats.crashStops.Inc()
	}
}

// Describe returns a sorted human-readable list of the plan's enabled
// fault families (diagnostics and soak reports).
func (in *Injector) Describe() []string {
	if in == nil {
		return nil
	}
	var out []string
	if in.plan.DelayProb > 0 {
		out = append(out, fmt.Sprintf("delay p=%g max=%dns", in.plan.DelayProb, in.plan.MaxDelayNs))
	}
	if in.plan.ReorderProb > 0 {
		out = append(out, fmt.Sprintf("reorder p=%g", in.plan.ReorderProb))
	}
	if in.plan.SendFailProb > 0 {
		out = append(out, fmt.Sprintf("sendfail p=%g retries<=%d", in.plan.SendFailProb, in.plan.MaxRetries))
	}
	if in.plan.JitterProb > 0 {
		out = append(out, fmt.Sprintf("jitter p=%g wall<=%s", in.plan.JitterProb, in.plan.JitterWall))
	}
	if in.plan.StallProb > 0 {
		out = append(out, fmt.Sprintf("stall p=%g", in.plan.StallProb))
	}
	if in.plan.RMAProb > 0 {
		out = append(out, fmt.Sprintf("rma p=%g max=%dns", in.plan.RMAProb, in.plan.MaxRMADelayNs))
	}
	if in.plan.CrashEnabled() {
		out = append(out, fmt.Sprintf("crash rank %d at call %d", in.plan.CrashRank, in.plan.CrashAfterCalls))
	}
	sort.Strings(out)
	return out
}
