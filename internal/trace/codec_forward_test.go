package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestReadJSONIgnoresUnknownFields pins the codec's forward
// compatibility: a log written by a future version with extra fields
// (top-level or inside the call record) must still decode, with the
// known fields intact. Golden input, not generated, so a regression in
// the wire struct tags shows up as a diff here.
func TestReadJSONIgnoresUnknownFields(t *testing.T) {
	const golden = `{"seq":0,"rank":1,"tid":2,"time":300,"op":"Write","locRank":1,"locName":"tagtmp","futureField":"ignored","nested":{"a":[1,2,3]}}
{"seq":1,"rank":1,"tid":2,"time":310,"op":"MPICall","call":{"kind":"MPI_Recv","peer":0,"tag":7,"comm":0,"request":-1,"level":-1,"win":-1,"line":42,"durationNs":999,"extra":{"x":true}},"schemaVersion":9}
{"seq":2,"rank":0,"tid":0,"time":320,"op":"Barrier","syncRank":0,"syncSeq":4,"annotations":["a","b"]}
`
	events, err := ReadJSON(strings.NewReader(golden))
	if err != nil {
		t.Fatalf("unknown fields must not error: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	want0 := Event{Seq: 0, Rank: 1, TID: 2, Time: 300, Op: OpWrite, Loc: Loc{Rank: 1, Name: VarTag}}
	if events[0] != want0 {
		t.Errorf("event 0 = %+v, want %+v", events[0], want0)
	}
	wantCall := MPICall{Kind: CallRecv, Peer: 0, Tag: 7, Comm: 0, Request: -1, Level: -1, Win: -1, Line: 42}
	if events[1].Call == nil || *events[1].Call != wantCall {
		t.Errorf("event 1 call = %+v, want %+v", events[1].Call, wantCall)
	}
	want2 := Event{Seq: 2, Rank: 0, TID: 0, Time: 320, Op: OpBarrier, Sync: SyncID{Rank: 0, Seq: 4}}
	if events[2] != want2 {
		t.Errorf("event 2 = %+v, want %+v", events[2], want2)
	}
}

// randomEvent draws an arbitrary but wire-representable event.
func randomEvent(r *rand.Rand, seq uint64) Event {
	names := []string{VarSrc, VarTag, VarComm, VarRequest, VarCollective, VarFinalize, "u:grid", "$critical:c1"}
	e := Event{
		Seq:  seq,
		Rank: r.Intn(8),
		TID:  r.Intn(4),
		Time: r.Int63n(1 << 40),
		Op:   Op(r.Intn(len(opNames))),
	}
	switch e.Op {
	case OpRead, OpWrite:
		e.Loc = Loc{Rank: r.Intn(8), Name: names[r.Intn(len(names))]}
	case OpAcquire, OpRelease:
		e.Lock = LockID{Rank: r.Intn(8), Name: names[r.Intn(len(names))]}
	case OpFork, OpJoin, OpBegin, OpEnd, OpBarrier:
		e.Sync = SyncID{Rank: r.Intn(8), Seq: uint64(r.Intn(1000))}
	}
	if e.Op == OpMPICall || r.Intn(4) == 0 {
		e.Call = &MPICall{
			Kind:    CallKind(1 + r.Intn(len(callNames)-1)), // any real kind (CallNone never reaches the log)
			Peer:    r.Intn(10) - 1,
			Tag:     r.Intn(100) - 1,
			Comm:    r.Intn(3) - 1,
			Request: r.Intn(20) - 1,
			Level:   r.Intn(4) - 1,
			Win:     r.Intn(4) - 1,
			Line:    r.Intn(500),
		}
	}
	return e
}

// TestJSONRoundTripRandomized is a property test over the full event
// space: any event the runtime can emit survives encode→decode
// unchanged. Fixed seed keeps it deterministic.
func TestJSONRoundTripRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		events := make([]Event, n)
		for i := range events {
			events[i] = randomEvent(r, uint64(i))
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, events); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if len(got) != len(events) {
			t.Fatalf("trial %d: decoded %d events, want %d", trial, len(got), len(events))
		}
		for i := range events {
			if !reflect.DeepEqual(events[i], got[i]) {
				t.Fatalf("trial %d event %d: %s\n got %+v\nwant %+v",
					trial, i, diffHint(events[i], got[i]), got[i], events[i])
			}
		}
	}
}

func diffHint(a, b Event) string {
	if a.Call != nil && b.Call != nil && *a.Call != *b.Call {
		return fmt.Sprintf("call differs: %+v vs %+v", *a.Call, *b.Call)
	}
	return "event differs"
}
