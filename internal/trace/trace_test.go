package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLogAssignsSequenceNumbers(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Emit(Event{Op: OpRead})
	}
	evs := l.Events()
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestLogConcurrentEmitters(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	const n = 50
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				l.Emit(Event{Op: OpWrite, Rank: g})
			}
		}(g)
	}
	wg.Wait()
	evs := l.Events()
	if len(evs) != 8*n {
		t.Fatalf("events = %d", len(evs))
	}
	seen := map[uint64]bool{}
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestLogEventsIsSnapshot(t *testing.T) {
	l := NewLog()
	l.Emit(Event{Op: OpRead})
	snap := l.Events()
	l.Emit(Event{Op: OpWrite})
	if len(snap) != 1 {
		t.Fatalf("snapshot mutated: %d", len(snap))
	}
}

func TestLogCallsFiltersRecords(t *testing.T) {
	l := NewLog()
	l.Emit(Event{Op: OpWrite})
	l.Emit(Event{Op: OpMPICall, Call: &MPICall{Kind: CallSend}})
	l.Emit(Event{Op: OpBarrier})
	l.Emit(Event{Op: OpMPICall, Call: &MPICall{Kind: CallRecv}})
	calls := l.Calls()
	if len(calls) != 2 || calls[0].Call.Kind != CallSend || calls[1].Call.Kind != CallRecv {
		t.Fatalf("calls = %v", calls)
	}
}

func TestCountSink(t *testing.T) {
	var s CountSink
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Emit(Event{})
			}
		}()
	}
	wg.Wait()
	if s.Count() != 400 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestTeeSink(t *testing.T) {
	a, b := NewLog(), NewLog()
	tee := TeeSink{a, b}
	tee.Emit(Event{Op: OpRead})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee delivered %d/%d", a.Len(), b.Len())
	}
}

func TestMonitoredVarsChecklist(t *testing.T) {
	vars := MonitoredVars()
	want := []string{"srctmp", "tagtmp", "commtmp", "requesttmp", "collectivetmp", "finalizetmp"}
	if len(vars) != len(want) {
		t.Fatalf("checklist = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("checklist[%d] = %q, want %q", i, vars[i], want[i])
		}
	}
}

func TestCallKindClassification(t *testing.T) {
	collectives := []CallKind{CallBarrier, CallBcast, CallReduce, CallAllreduce, CallGather, CallScatter, CallAlltoall}
	for _, k := range collectives {
		if !k.IsCollective() {
			t.Errorf("%v should be collective", k)
		}
		if k.IsPointToPoint() {
			t.Errorf("%v should not be p2p", k)
		}
	}
	p2p := []CallKind{CallSend, CallRecv, CallIsend, CallIrecv}
	for _, k := range p2p {
		if !k.IsPointToPoint() {
			t.Errorf("%v should be p2p", k)
		}
		if k.IsCollective() {
			t.Errorf("%v should not be collective", k)
		}
	}
	for _, k := range []CallKind{CallInit, CallFinalize, CallWait, CallProbe} {
		if k.IsCollective() || k.IsPointToPoint() {
			t.Errorf("%v misclassified", k)
		}
	}
}

func TestStringers(t *testing.T) {
	if OpAcquire.String() != "Acquire" || OpMPICall.String() != "MPICall" {
		t.Fatal("Op stringer broken")
	}
	if CallSend.String() != "MPI_Send" {
		t.Fatalf("CallKind stringer: %q", CallSend.String())
	}
	if got := (Loc{Rank: 2, Name: "srctmp"}).String(); got != "p2:srctmp" {
		t.Fatalf("Loc stringer: %q", got)
	}
	c := MPICall{Kind: CallRecv, Peer: 1, Tag: 9, Comm: 0, Request: -1, Line: 12}
	if s := c.String(); !strings.Contains(s, "MPI_Recv") || !strings.Contains(s, "tag=9") {
		t.Fatalf("MPICall stringer: %q", s)
	}
	events := []Event{
		{Op: OpWrite, Rank: 1, TID: 0, Loc: Loc{Rank: 1, Name: "x"}},
		{Op: OpAcquire, Rank: 0, TID: 1, Lock: LockID{Rank: 0, Name: "$critical:c"}},
		{Op: OpMPICall, Call: &c},
		{Op: OpBarrier, Sync: SyncID{Rank: 0, Seq: 3}},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Fatalf("empty event string for %+v", e)
		}
	}
	// Out-of-range values should not panic.
	_ = Op(99).String()
	_ = CallKind(99).String()
	_ = fmt.Sprint(events)
}
