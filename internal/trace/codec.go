package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrTruncated reports a trace stream that ends mid-record — the
// signature of a recording cut short by a crash. ReadJSON returns a
// *TruncatedError (unwrapping to this sentinel) together with the
// events salvaged before the cut, so callers can analyze the prefix.
var ErrTruncated = errors.New("trace: truncated stream")

// TruncatedError carries how much of a truncated stream was salvaged.
type TruncatedError struct {
	// Events is the number of complete events decoded before the cut.
	Events int
	// Err is the decoder error at the point of truncation.
	Err error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("trace: truncated stream after %d events: %v", e.Events, e.Err)
}

// Unwrap makes errors.Is(err, ErrTruncated) match.
func (e *TruncatedError) Unwrap() error { return ErrTruncated }

// The paper notes dynamic analysis may run online (during execution)
// or offline (after it terminates). This codec supports the offline
// mode: event logs serialize to newline-delimited JSON, so a recorded
// run can be re-analyzed later with different analysis options
// (cmd/hometrace).

// jsonEvent is the wire form of an Event: flat, with the call record
// inlined when present.
type jsonEvent struct {
	Seq  uint64 `json:"seq"`
	Rank int    `json:"rank"`
	TID  int    `json:"tid"`
	Time int64  `json:"time"`
	Op   string `json:"op"`

	LocRank int    `json:"locRank,omitempty"`
	LocName string `json:"locName,omitempty"`

	LockRank int    `json:"lockRank,omitempty"`
	LockName string `json:"lockName,omitempty"`

	SyncRank int    `json:"syncRank,omitempty"`
	SyncSeq  uint64 `json:"syncSeq,omitempty"`

	Call *jsonCall `json:"call,omitempty"`
}

type jsonCall struct {
	Kind    string `json:"kind"`
	Peer    int    `json:"peer"`
	Tag     int    `json:"tag"`
	Comm    int    `json:"comm"`
	Request int    `json:"request"`
	Level   int    `json:"level"`
	Win     int    `json:"win"`
	Line    int    `json:"line"`

	// Match-edge tags (zero = untagged); omitted on the wire when
	// absent so pre-tagging recordings decode unchanged.
	SendIx    uint64 `json:"sendIx,omitempty"`
	MatchRank int    `json:"matchRank,omitempty"`
	MatchTID  int    `json:"matchTid,omitempty"`
	MatchIx   uint64 `json:"matchIx,omitempty"`
	CollSeq   int64  `json:"collSeq,omitempty"`
}

// opByName and callByName invert the stringers for decoding.
var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = Op(op)
	}
	return m
}()

var callByName = func() map[string]CallKind {
	m := make(map[string]CallKind, len(callNames))
	for k, name := range callNames {
		m[name] = CallKind(k)
	}
	return m
}()

// WriteJSON serializes events as newline-delimited JSON.
func WriteJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		je := jsonEvent{
			Seq: e.Seq, Rank: e.Rank, TID: e.TID, Time: e.Time,
			Op:      e.Op.String(),
			LocRank: e.Loc.Rank, LocName: e.Loc.Name,
			LockRank: e.Lock.Rank, LockName: e.Lock.Name,
			SyncRank: e.Sync.Rank, SyncSeq: e.Sync.Seq,
		}
		if e.Call != nil {
			je.Call = &jsonCall{
				Kind: e.Call.Kind.String(), Peer: e.Call.Peer, Tag: e.Call.Tag,
				Comm: e.Call.Comm, Request: e.Call.Request,
				Level: e.Call.Level, Win: e.Call.Win, Line: e.Call.Line,
				SendIx: e.Call.SendIx, MatchRank: e.Call.MatchRank,
				MatchTID: e.Call.MatchTID, MatchIx: e.Call.MatchIx,
				CollSeq: e.Call.CollSeq,
			}
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON deserializes a newline-delimited JSON event stream. Call
// records shared by several events in the original log are NOT
// re-deduplicated: each event gets its own record with equal contents,
// which the analyses treat identically.
//
// A stream that ends mid-record returns the complete events decoded so
// far together with a *TruncatedError, so a recording cut short by a
// crash can still be replayed as a prefix.
func ReadJSON(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return out, &TruncatedError{Events: len(out), Err: err}
			}
			return nil, fmt.Errorf("trace: decode event %d: %w", len(out), err)
		}
		op, ok := opByName[je.Op]
		if !ok {
			return nil, fmt.Errorf("trace: event %d has unknown op %q", len(out), je.Op)
		}
		e := Event{
			Seq: je.Seq, Rank: je.Rank, TID: je.TID, Time: je.Time, Op: op,
			Loc:  Loc{Rank: je.LocRank, Name: je.LocName},
			Lock: LockID{Rank: je.LockRank, Name: je.LockName},
			Sync: SyncID{Rank: je.SyncRank, Seq: je.SyncSeq},
		}
		if je.Call != nil {
			kind, ok := callByName[je.Call.Kind]
			if !ok {
				return nil, fmt.Errorf("trace: event %d has unknown call kind %q", len(out), je.Call.Kind)
			}
			e.Call = &MPICall{
				Kind: kind, Peer: je.Call.Peer, Tag: je.Call.Tag,
				Comm: je.Call.Comm, Request: je.Call.Request,
				Level: je.Call.Level, Win: je.Call.Win, Line: je.Call.Line,
				SendIx: je.Call.SendIx, MatchRank: je.Call.MatchRank,
				MatchTID: je.Call.MatchTID, MatchIx: je.Call.MatchIx,
				CollSeq: je.Call.CollSeq,
			}
		}
		out = append(out, e)
	}
	return out, nil
}
