package trace

// Timeline export: renders an instrumentation event log as Chrome
// trace_event JSON (the format chrome://tracing and Perfetto open),
// with one lane per (rank, thread) in virtual time. MPI and OpenMP
// operations become duration events — an operation spans from its
// pre-call emission to the thread's next event, so blocking shows up
// as width — and the cross-rank/cross-thread orderings the runtime
// realized become flow arrows: message matches (from the MPICall
// match-edge tags), collective instances, fork/join and barrier
// edges, and lock hand-offs.
//
// Determinism: everything the builder derives is keyed on
// schedule-stable coordinates — (rank, tid, per-thread event index)
// for events, (rank, tid, send index) for messages, (comm, instance)
// for collectives, SyncID for fork/join/barrier — never on the global
// log sequence, which depends on the host schedule. Two runs that
// realize the same per-thread event streams and virtual timestamps
// (in particular, a recording and its schedule replay of a program
// whose virtual time is schedule-independent) render byte-identical
// timelines.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TimelineEvent is one Chrome trace_event record. Ts and Dur are in
// microseconds of virtual time (the unit chrome://tracing expects).
type TimelineEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Timeline is an assembled trace, ready for JSON export or witness
// markup (explain overlays instant markers on witness accesses).
type Timeline struct {
	events []TimelineEvent
	// lanes indexes each (rank, tid) lane's events in per-thread
	// order, so markers can be addressed by stable coordinates.
	lanes  map[laneKey][]laneEvent
	nextID uint64
}

type laneKey struct{ rank, tid int }

type laneEvent struct {
	ev Event
	ts int64 // virtual ns
}

// durSliverNs is the rendered duration of a lane's final event and of
// zero-gap events, so every operation stays clickable in the viewer.
const durSliverNs = 1000

func usOf(ns int64) float64 { return float64(ns) / 1000.0 }

// BuildTimeline assembles the timeline for an event log: lanes,
// duration events, and the flow arrows derivable from the log's
// match/sync tags.
func BuildTimeline(events []Event) *Timeline {
	t := &Timeline{lanes: map[laneKey][]laneEvent{}}

	// Split the log into (rank, tid) lanes. Each lane's subsequence of
	// the log is that thread's emission order (a thread emits its own
	// events in program order), so per-lane order is schedule-stable
	// even though the interleaving is not.
	for _, e := range events {
		k := laneKey{e.Rank, e.TID}
		t.lanes[k] = append(t.lanes[k], laneEvent{ev: e, ts: e.Time})
	}
	keys := make([]laneKey, 0, len(t.lanes))
	for k := range t.lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].tid < keys[j].tid
	})

	// Lane metadata: name processes after ranks and keep the viewer's
	// sort order equal to (rank, tid).
	seenRank := map[int]bool{}
	for _, k := range keys {
		if !seenRank[k.rank] {
			seenRank[k.rank] = true
			t.events = append(t.events, TimelineEvent{
				Name: "process_name", Ph: "M", Pid: k.rank,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", k.rank)},
			})
		}
		t.events = append(t.events, TimelineEvent{
			Name: "thread_name", Ph: "M", Pid: k.rank, Tid: k.tid,
			Args: map[string]any{"name": fmt.Sprintf("thread %d", k.tid)},
		})
	}

	// Duration events: each operation spans to the thread's next
	// emission (blocking calls render wide), with a minimum sliver.
	for _, k := range keys {
		lane := t.lanes[k]
		for i, le := range lane {
			dur := int64(durSliverNs)
			if i+1 < len(lane) {
				if gap := lane[i+1].ts - le.ts; gap > dur {
					dur = gap
				}
			}
			t.events = append(t.events, TimelineEvent{
				Name: opEventName(le.ev), Ph: "X", Cat: opCategory(le.ev),
				Ts: usOf(le.ts), Dur: usOf(dur), Pid: k.rank, Tid: k.tid,
				Args: opArgs(le.ev, uint64(i)),
			})
		}
	}

	t.buildMessageFlows(keys)
	t.buildCollectiveFlows(keys)
	t.buildSyncFlows(keys)
	t.buildLockFlows(events)
	return t
}

// buildMessageFlows draws send→receive arrows from the match-edge
// tags: a completed receive/probe names its message's (rank, tid,
// send index), which locates the sender's MPICall event.
func (t *Timeline) buildMessageFlows(keys []laneKey) {
	type sendKey struct {
		rank, tid int
		ix        uint64
	}
	sends := map[sendKey]laneEvent{}
	for _, k := range keys {
		for _, le := range t.lanes[k] {
			c := le.ev.Call
			if le.ev.Op == OpMPICall && c != nil && c.SendIx > 0 {
				sends[sendKey{k.rank, k.tid, c.SendIx}] = le
			}
		}
	}
	for _, k := range keys {
		for _, le := range t.lanes[k] {
			c := le.ev.Call
			if le.ev.Op != OpMPICall || c == nil || c.MatchIx == 0 {
				continue
			}
			src, ok := sends[sendKey{c.MatchRank, c.MatchTID, c.MatchIx}]
			if !ok {
				continue
			}
			id := t.flowID()
			t.flow("msg", "s", id, src)
			t.events = append(t.events, TimelineEvent{
				Name: "msg", Ph: "f", Cat: "flow", BP: "e", ID: id,
				Ts: usOf(le.ts), Pid: k.rank, Tid: k.tid,
			})
		}
	}
}

// buildCollectiveFlows chains the participants of each collective
// instance, identified by (communicator, instance number).
func (t *Timeline) buildCollectiveFlows(keys []laneKey) {
	type collKey struct {
		comm int
		seq  int64
	}
	groups := map[collKey][]laneEvent{}
	var order []collKey
	for _, k := range keys {
		for _, le := range t.lanes[k] {
			c := le.ev.Call
			if le.ev.Op == OpMPICall && c != nil && c.CollSeq > 0 {
				ck := collKey{c.Comm, c.CollSeq}
				if _, ok := groups[ck]; !ok {
					order = append(order, ck)
				}
				groups[ck] = append(groups[ck], le)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].comm != order[j].comm {
			return order[i].comm < order[j].comm
		}
		return order[i].seq < order[j].seq
	})
	for _, ck := range order {
		t.chain("coll", sortByLane(groups[ck]))
	}
}

// buildSyncFlows draws the fork/join and barrier edges from the
// SyncID groupings the OpenMP substrate tags its events with.
func (t *Timeline) buildSyncFlows(keys []laneKey) {
	type group struct {
		fork, join *laneEvent
		begins     []laneEvent
		ends       []laneEvent
		barriers   []laneEvent
	}
	groups := map[SyncID]*group{}
	grp := func(id SyncID) *group {
		g, ok := groups[id]
		if !ok {
			g = &group{}
			groups[id] = g
		}
		return g
	}
	for _, k := range keys {
		for i := range t.lanes[k] {
			le := t.lanes[k][i]
			switch le.ev.Op {
			case OpFork:
				grp(le.ev.Sync).fork = &t.lanes[k][i]
			case OpJoin:
				grp(le.ev.Sync).join = &t.lanes[k][i]
			case OpBegin:
				grp(le.ev.Sync).begins = append(grp(le.ev.Sync).begins, le)
			case OpEnd:
				grp(le.ev.Sync).ends = append(grp(le.ev.Sync).ends, le)
			case OpBarrier:
				grp(le.ev.Sync).barriers = append(grp(le.ev.Sync).barriers, le)
			}
		}
	}
	ids := make([]SyncID, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Rank != ids[j].Rank {
			return ids[i].Rank < ids[j].Rank
		}
		return ids[i].Seq < ids[j].Seq
	})
	for _, id := range ids {
		g := groups[id]
		if g.fork != nil {
			for _, b := range sortByLane(g.begins) {
				fid := t.flowID()
				t.flow("fork", "s", fid, *g.fork)
				t.flow("fork", "f", fid, b)
			}
		}
		if g.join != nil {
			for _, e := range sortByLane(g.ends) {
				fid := t.flowID()
				t.flow("join", "s", fid, e)
				t.flow("join", "f", fid, *g.join)
			}
		}
		t.chain("barrier", sortByLane(g.barriers))
	}
}

// buildLockFlows draws release→acquire hand-off arrows. The log's
// global order respects the real-time order of a lock's release and
// its successor's acquire, so pairing in log order is sound; the
// hand-off order itself is only schedule-stable when the lock is
// uncontended.
func (t *Timeline) buildLockFlows(events []Event) {
	type edge struct{ rel, acq Event }
	lastRel := map[LockID]*Event{}
	var edges []edge
	for i := range events {
		e := events[i]
		switch e.Op {
		case OpRelease:
			lastRel[e.Lock] = &events[i]
		case OpAcquire:
			if r := lastRel[e.Lock]; r != nil && (r.Rank != e.Rank || r.TID != e.TID) {
				edges = append(edges, edge{rel: *r, acq: e})
			}
			lastRel[e.Lock] = nil
		}
	}
	for _, ed := range edges {
		id := t.flowID()
		t.flow("lock", "s", id, laneEvent{ev: ed.rel, ts: ed.rel.Time})
		t.flow("lock", "f", id, laneEvent{ev: ed.acq, ts: ed.acq.Time})
	}
}

// AddMarker overlays an instant event on the (rank, tid, ix)-th lane
// event — the witness overlay. Returns false when the coordinate does
// not exist in the log.
func (t *Timeline) AddMarker(rank, tid int, ix uint64, name string, args map[string]any) bool {
	lane := t.lanes[laneKey{rank, tid}]
	if ix >= uint64(len(lane)) {
		return false
	}
	t.events = append(t.events, TimelineEvent{
		Name: name, Ph: "i", Cat: "witness", S: "t",
		Ts: usOf(lane[ix].ts), Pid: rank, Tid: tid, Args: args,
	})
	return true
}

// flowID allocates the next flow identifier (assignment order is the
// deterministic build order above).
// Lanes returns the number of (rank, thread) lanes in the timeline.
func (t *Timeline) Lanes() int { return len(t.lanes) }

func (t *Timeline) flowID() uint64 {
	t.nextID++
	return t.nextID
}

func (t *Timeline) flow(name, ph string, id uint64, le laneEvent) {
	te := TimelineEvent{
		Name: name, Ph: ph, Cat: "flow", ID: id,
		Ts: usOf(le.ts), Pid: le.ev.Rank, Tid: le.ev.TID,
	}
	if ph == "f" {
		te.BP = "e"
	}
	t.events = append(t.events, te)
}

// chain links a sorted participant group with step flow events
// (s → t → ... → f), the trace_event idiom for n-way synchronization.
func (t *Timeline) chain(name string, les []laneEvent) {
	if len(les) < 2 {
		return
	}
	id := t.flowID()
	for i, le := range les {
		ph := "t"
		switch i {
		case 0:
			ph = "s"
		case len(les) - 1:
			ph = "f"
		}
		t.flow(name, ph, id, le)
	}
}

func sortByLane(les []laneEvent) []laneEvent {
	out := append([]laneEvent(nil), les...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].ev.Rank != out[j].ev.Rank {
			return out[i].ev.Rank < out[j].ev.Rank
		}
		return out[i].ev.TID < out[j].ev.TID
	})
	return out
}

func opEventName(e Event) string {
	switch e.Op {
	case OpRead, OpWrite:
		return fmt.Sprintf("%s %s", e.Op, e.Loc.Name)
	case OpAcquire, OpRelease:
		return fmt.Sprintf("%s %s", e.Op, e.Lock.Name)
	case OpMPICall:
		if e.Call != nil {
			return e.Call.Kind.String()
		}
	}
	return e.Op.String()
}

func opCategory(e Event) string {
	switch e.Op {
	case OpMPICall:
		return "mpi"
	case OpRead, OpWrite:
		return "mem"
	default:
		return "omp"
	}
}

func opArgs(e Event, ix uint64) map[string]any {
	args := map[string]any{"ix": ix}
	switch e.Op {
	case OpMPICall:
		if c := e.Call; c != nil {
			args["call"] = c.String()
			if c.SendIx > 0 {
				args["sendIx"] = c.SendIx
			}
			if c.MatchIx > 0 {
				args["match"] = fmt.Sprintf("p%d.t%d #%d", c.MatchRank, c.MatchTID, c.MatchIx)
			}
			if c.CollSeq > 0 {
				args["collSeq"] = c.CollSeq
			}
		}
	case OpRead, OpWrite:
		args["var"] = e.Loc.String()
	case OpFork, OpJoin, OpBegin, OpEnd, OpBarrier:
		args["sync"] = fmt.Sprintf("%d/%d", e.Sync.Rank, e.Sync.Seq)
	}
	return args
}

// WriteJSON serializes the timeline as a Chrome trace_event JSON
// object, one event per line for diffable goldens. The rendering is
// deterministic: build order is deterministic and map-valued args
// marshal with sorted keys.
func (t *Timeline) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, te := range t.events {
		b, err := json.Marshal(te)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
