package trace

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	call := &MPICall{Kind: CallRecv, Peer: 1, Tag: 5, Comm: 0, Request: -1, Level: -1, Line: 12}
	return []Event{
		{Seq: 0, Rank: 0, TID: 0, Time: 100, Op: OpFork, Sync: SyncID{Rank: 0, Seq: 1}},
		{Seq: 1, Rank: 0, TID: 1, Time: 120, Op: OpBegin, Sync: SyncID{Rank: 0, Seq: 1}},
		{Seq: 2, Rank: 0, TID: 1, Time: 150, Op: OpAcquire, Lock: LockID{Rank: 0, Name: "$critical:c"}},
		{Seq: 3, Rank: 0, TID: 1, Time: 160, Op: OpWrite, Loc: Loc{Rank: 0, Name: VarTag}, Call: call},
		{Seq: 4, Rank: 0, TID: 1, Time: 170, Op: OpMPICall, Call: call},
		{Seq: 5, Rank: 0, TID: 1, Time: 180, Op: OpRelease, Lock: LockID{Rank: 0, Name: "$critical:c"}},
		{Seq: 6, Rank: 1, TID: 0, Time: 90, Op: OpBarrier, Sync: SyncID{Rank: 1, Seq: 2}},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		a, b := events[i], got[i]
		if a.Seq != b.Seq || a.Rank != b.Rank || a.TID != b.TID || a.Time != b.Time || a.Op != b.Op {
			t.Fatalf("event %d header mismatch: %+v vs %+v", i, a, b)
		}
		if a.Loc != b.Loc || a.Lock != b.Lock || a.Sync != b.Sync {
			t.Fatalf("event %d payload mismatch: %+v vs %+v", i, a, b)
		}
		if (a.Call == nil) != (b.Call == nil) {
			t.Fatalf("event %d call presence mismatch", i)
		}
		if a.Call != nil && *a.Call != *b.Call {
			t.Fatalf("event %d call mismatch: %+v vs %+v", i, *a.Call, *b.Call)
		}
	}
}

func TestJSONIsLineDelimited(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sampleEvents()) {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("not one object per line: %q", l)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"op":"NoSuchOp"}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"op":"MPICall","call":{"kind":"MPI_Nonsense"}}`)); err == nil {
		t.Fatal("unknown call kind accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

func TestReadJSONEmpty(t *testing.T) {
	events, err := ReadJSON(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("events=%v err=%v", events, err)
	}
}

func TestReadJSONTruncatedGolden(t *testing.T) {
	f, err := os.Open("testdata/truncated.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadJSON(f)
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want errors.Is(_, ErrTruncated)", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TruncatedError", err)
	}
	if te.Events != 2 || len(events) != 2 {
		t.Fatalf("salvaged %d events (reported %d), want 2", len(events), te.Events)
	}
	if events[0].Op != OpFork || events[1].Op != OpWrite {
		t.Fatalf("salvaged prefix mismatch: %+v", events)
	}
	if events[1].Call == nil || events[1].Call.Kind != CallRecv {
		t.Fatalf("salvaged call record mismatch: %+v", events[1].Call)
	}
}

func TestReadJSONTruncatedMidLiteral(t *testing.T) {
	// Cut inside a JSON value (not just mid-object) must also salvage.
	events, err := ReadJSON(strings.NewReader(
		"{\"seq\":0,\"rank\":0,\"tid\":0,\"time\":1,\"op\":\"Fork\"}\n{\"seq\":1,\"ra"))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(events) != 1 {
		t.Fatalf("salvaged %d events, want 1", len(events))
	}
}
