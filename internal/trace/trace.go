// Package trace defines the event model shared by the instrumented
// runtime and the dynamic analyses.
//
// In the paper, Intel Pin observes the instrumented binary and feeds a
// stream of events (memory accesses on the monitored variables, lock
// operations, synchronization points, and MPI call records) to HOME's
// dynamic phase. Here the instrumented MPI wrappers and the OpenMP
// substrate emit the same stream as typed Go values into a Sink.
//
// The package is a dependency leaf: it defines only data and an
// append-only log, so every other layer (simulation kernel, substrates,
// detectors) can share the vocabulary without import cycles.
package trace

import (
	"fmt"
	"sync"
)

// Op enumerates the kinds of events the instrumentation emits.
type Op int

const (
	// OpRead and OpWrite are accesses to a monitored memory location
	// (for HOME: the monitored variables; for the ITC baseline: every
	// shared location).
	OpRead Op = iota
	OpWrite

	// OpAcquire and OpRelease are lock operations (omp critical
	// sections, omp_lock_t style locks).
	OpAcquire
	OpRelease

	// OpFork is emitted by the parent thread immediately before an omp
	// parallel region forks children; OpJoin by the parent after the
	// implicit join. Children emit OpBegin/OpEnd with the same SyncID.
	OpFork
	OpJoin
	OpBegin
	OpEnd

	// OpBarrier marks participation in a barrier instance (omp barrier
	// or the implicit barrier at the end of worksharing constructs).
	// All events with equal SyncID form one barrier episode.
	OpBarrier

	// OpMPICall is an MPI call record; Event.Call is populated.
	OpMPICall
)

var opNames = [...]string{
	OpRead: "Read", OpWrite: "Write",
	OpAcquire: "Acquire", OpRelease: "Release",
	OpFork: "Fork", OpJoin: "Join", OpBegin: "Begin", OpEnd: "End",
	OpBarrier: "Barrier", OpMPICall: "MPICall",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Loc identifies a memory location within the simulated cluster. The
// monitored variables of the paper (srctmp, tagtmp, commtmp,
// requesttmp, collectivetmp, finalizetmp) are process-global, so a
// location is a (rank, name) pair. User variables get names qualified
// by the interpreter.
type Loc struct {
	Rank int
	Name string
}

func (l Loc) String() string { return fmt.Sprintf("p%d:%s", l.Rank, l.Name) }

// Monitored variable names, exactly the checklist from the paper's MPI
// wrapper implementation (§IV-B).
const (
	VarSrc        = "srctmp"
	VarTag        = "tagtmp"
	VarComm       = "commtmp"
	VarRequest    = "requesttmp"
	VarCollective = "collectivetmp"
	VarFinalize   = "finalizetmp"

	// VarWindow is the extension checklist entry for one-sided (RMA)
	// accesses; it is not part of the paper's six-variable list.
	VarWindow = "wintmp"
)

// MonitoredVars lists the full checklist in report order.
func MonitoredVars() []string {
	return []string{VarSrc, VarTag, VarComm, VarRequest, VarCollective, VarFinalize}
}

// LockID identifies a lock within a rank. Critical sections use
// compiler-assigned names ("$critical:<label>"); omp locks use their
// variable identity.
type LockID struct {
	Rank int
	Name string
}

func (l LockID) String() string { return fmt.Sprintf("p%d:%s", l.Rank, l.Name) }

// SyncID identifies one episode of a structured synchronization
// construct (a particular dynamic instance of a parallel region fork,
// join, or barrier) within a rank.
type SyncID struct {
	Rank int
	Seq  uint64
}

// CallKind enumerates the MPI entry points the tool understands.
type CallKind int

const (
	CallNone CallKind = iota
	CallInit
	CallInitThread
	CallFinalize
	CallSend
	CallRecv
	CallIsend
	CallIrecv
	CallWait
	CallTest
	CallProbe
	CallIprobe
	CallBarrier
	CallBcast
	CallReduce
	CallAllreduce
	CallGather
	CallScatter
	CallAlltoall
	CallAllgather
	CallSendrecv
	CallWinCreate
	CallPut
	CallGet
	CallAccumulate
	CallWinFence
	CallCommRank
	CallCommSize
)

var callNames = [...]string{
	CallNone: "none", CallInit: "MPI_Init", CallInitThread: "MPI_Init_thread",
	CallFinalize: "MPI_Finalize", CallSend: "MPI_Send", CallRecv: "MPI_Recv",
	CallIsend: "MPI_Isend", CallIrecv: "MPI_Irecv", CallWait: "MPI_Wait",
	CallTest: "MPI_Test", CallProbe: "MPI_Probe", CallIprobe: "MPI_Iprobe",
	CallBarrier: "MPI_Barrier", CallBcast: "MPI_Bcast", CallReduce: "MPI_Reduce",
	CallAllreduce: "MPI_Allreduce", CallGather: "MPI_Gather",
	CallScatter: "MPI_Scatter", CallAlltoall: "MPI_Alltoall",
	CallAllgather: "MPI_Allgather", CallSendrecv: "MPI_Sendrecv",
	CallWinCreate: "MPI_Win_create", CallPut: "MPI_Put", CallGet: "MPI_Get",
	CallAccumulate: "MPI_Accumulate", CallWinFence: "MPI_Win_fence",
	CallCommRank: "MPI_Comm_rank", CallCommSize: "MPI_Comm_size",
}

func (k CallKind) String() string {
	if int(k) < len(callNames) {
		return callNames[k]
	}
	return fmt.Sprintf("CallKind(%d)", int(k))
}

// IsCollective reports whether the call kind is a collective operation
// (all ranks of the communicator must participate).
func (k CallKind) IsCollective() bool {
	switch k {
	case CallBarrier, CallBcast, CallReduce, CallAllreduce, CallGather,
		CallScatter, CallAlltoall, CallAllgather:
		return true
	}
	return false
}

// IsRMA reports whether the call kind is a one-sided window access.
func (k CallKind) IsRMA() bool {
	switch k {
	case CallPut, CallGet, CallAccumulate:
		return true
	}
	return false
}

// IsPointToPoint reports whether the call kind is a point-to-point
// communication call.
func (k CallKind) IsPointToPoint() bool {
	switch k {
	case CallSend, CallRecv, CallIsend, CallIrecv, CallSendrecv:
		return true
	}
	return false
}

// MPICall is the argument record the instrumented wrapper captures for
// one MPI call at thread level (paper §IV-B: "StartExecLog records all
// the arguments in log").
type MPICall struct {
	Kind    CallKind
	Peer    int // source for receives/probes, dest for sends; -1 if n/a
	Tag     int // -1 if n/a
	Comm    int // communicator id; -1 if n/a
	Request int // request handle id; -1 if n/a
	Level   int // requested thread level for Init_thread; -1 otherwise
	Win     int // window id for RMA calls; -1 if n/a
	Line    int // source line of the call site (0 if unknown)

	// Match-edge tags, filled in by the wrapper after the underlying
	// call completes (the record is shared between the monitored-var
	// writes and the OpMPICall event, so late tagging is visible to
	// every post-run consumer). All zero values mean "untagged": send
	// indices and collective instances start at 1.
	//
	// For sends, SendIx is the sender thread's 1-based message index —
	// (Rank, TID, SendIx) identifies the message stably across host
	// schedules. For operations that complete a receive or observe a
	// message (Recv, Wait, Test, Probe, Iprobe), MatchRank/MatchTID/
	// MatchIx name the matched message's send: the timeline export
	// draws its flow arrows from these tags. For collectives, CollSeq
	// is the per-communicator instance number the call participated
	// in, shared by all participants of that instance.
	SendIx    uint64
	MatchRank int
	MatchTID  int
	MatchIx   uint64
	CollSeq   int64
}

func (c MPICall) String() string {
	return fmt.Sprintf("%s(peer=%d,tag=%d,comm=%d,req=%d)@line %d",
		c.Kind, c.Peer, c.Tag, c.Comm, c.Request, c.Line)
}

// Event is one observation in the instrumentation stream.
type Event struct {
	Seq  uint64 // global sequence number, assigned by the Log
	Rank int    // MPI rank (simulated process)
	TID  int    // OpenMP thread id within the rank (0 = master)
	Time int64  // virtual time in nanoseconds at emission
	Op   Op

	Loc  Loc      // for OpRead/OpWrite
	Lock LockID   // for OpAcquire/OpRelease
	Sync SyncID   // for OpFork/OpJoin/OpBegin/OpEnd/OpBarrier
	Call *MPICall // for OpMPICall
}

func (e Event) String() string {
	switch e.Op {
	case OpRead, OpWrite:
		return fmt.Sprintf("#%d p%d.t%d %s %s", e.Seq, e.Rank, e.TID, e.Op, e.Loc)
	case OpAcquire, OpRelease:
		return fmt.Sprintf("#%d p%d.t%d %s %s", e.Seq, e.Rank, e.TID, e.Op, e.Lock)
	case OpMPICall:
		return fmt.Sprintf("#%d p%d.t%d %s", e.Seq, e.Rank, e.TID, e.Call)
	default:
		return fmt.Sprintf("#%d p%d.t%d %s sync=%d/%d", e.Seq, e.Rank, e.TID, e.Op, e.Sync.Rank, e.Sync.Seq)
	}
}

// Sink consumes instrumentation events. Implementations must be safe
// for concurrent use; the substrates emit from many goroutines.
type Sink interface {
	Emit(Event)
}

// Log is an append-only, thread-safe event log assigning global
// sequence numbers. The sequence order is the observed interleaving the
// dynamic analyses run over.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Emit appends the event, stamping its sequence number.
func (l *Log) Emit(e Event) {
	l.mu.Lock()
	e.Seq = uint64(len(l.events))
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a snapshot of the log contents in sequence order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of events recorded so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Calls extracts the MPI call records in sequence order.
func (l *Log) Calls() []Event {
	all := l.Events()
	out := all[:0:0]
	for _, e := range all {
		if e.Op == OpMPICall {
			out = append(out, e)
		}
	}
	return out
}

// CountSink counts events without retaining them; used by baseline
// overhead models that charge per event but do not need the contents.
type CountSink struct {
	mu sync.Mutex
	n  uint64
}

// Emit increments the count.
func (s *CountSink) Emit(Event) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Count returns the number of events observed.
func (s *CountSink) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// TeeSink duplicates events to multiple sinks.
type TeeSink []Sink

// Emit forwards the event to every sink in order.
func (t TeeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
