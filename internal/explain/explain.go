// Package explain extracts causal witnesses for the verdicts of a
// HOME run: for every matched thread-safety violation and every raw
// concurrency report, the minimal evidence a user needs to believe —
// and debug — the verdict. A witness names the two conflicting
// accesses (or the offending call pair) by schedule-stable
// coordinates, the vector clocks observed at each access, the lockset
// held at each access together with the acquisition sites that
// produced it, the last realized cross-thread ordering edge into each
// access, and the missing happens-before edge as a concurrency
// certificate over the clock pair.
//
// Determinism: a witness never mentions global log sequence numbers
// or virtual timestamps — only (rank, tid, per-thread event index)
// coordinates, which are invariant under host-schedule perturbation.
// Given the same per-thread event streams (in particular a recorded
// run and its schedule replay), witness extraction is byte-stable.
package explain

import (
	"fmt"
	"sort"
	"strings"

	"home/internal/detect"
	"home/internal/sim"
	"home/internal/spec"
	"home/internal/trace"
	"home/internal/vclock"
)

// Hold is one lock in a site's lockset, with the acquisition site
// that put it there (the per-thread index of the Acquire event).
type Hold struct {
	Lock  string `json:"lock"`
	AcqIx uint64 `json:"acqIx"`
}

// Site is one side of a witness: an access or MPI call located by its
// schedule-stable lane coordinate (rank, tid, per-thread event index).
type Site struct {
	Rank  int    `json:"rank"`
	TID   int    `json:"tid"`
	Ix    uint64 `json:"ix"`
	Op    string `json:"op"`              // "Write srctmp", "MPI call", ...
	Call  string `json:"call,omitempty"`  // rendered MPI call record
	Line  int    `json:"line,omitempty"`  // source line of the call site
	Clock string `json:"clock,omitempty"` // vector clock at the access
	Locks []Hold `json:"locks,omitempty"` // lockset with acquisition sites
	// InEdge is the last realized cross-thread ordering edge into this
	// lane at or before the access (fork, barrier, join, or lock
	// hand-off) — the synchronization that did happen, against which
	// the missing edge is judged. Empty when the lane's history up to
	// the access is thread-local.
	InEdge string `json:"inEdge,omitempty"`
}

// Witness is the causal explanation of one verdict.
type Witness struct {
	// Kind is the violation class name, or "Race" for a concurrency
	// report not claimed by any matched violation.
	Kind    string `json:"kind"`
	Rank    int    `json:"rank"`
	Var     string `json:"var,omitempty"` // monitored variable, for race-backed verdicts
	Verdict string `json:"verdict"`
	Sites   []Site `json:"sites"`
	// Missing explains why no happens-before edge orders the pair (the
	// concurrency certificate), or, for pure lockset verdicts, why the
	// observed ordering does not protect the pair. Empty for
	// call-ordering violations, whose rule is the verdict itself.
	Missing string `json:"missing,omitempty"`
}

// String renders the witness as deterministic multi-line text.
func (w Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", w.Verdict)
	labels := []string{"first", "second"}
	for i, s := range w.Sites {
		label := fmt.Sprintf("site%d", i+1)
		if i < len(labels) && len(w.Sites) <= 2 {
			label = labels[i]
		}
		fmt.Fprintf(&b, "  %-7s p%d.t%d #%d %s", label+":", s.Rank, s.TID, s.Ix, s.Op)
		if s.Call != "" {
			fmt.Fprintf(&b, " in %s", s.Call)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "          locks held: %s\n", renderHolds(s.Locks))
		if s.Clock != "" {
			fmt.Fprintf(&b, "          clock: %s\n", s.Clock)
		}
		if s.InEdge != "" {
			fmt.Fprintf(&b, "          inbound edge: %s\n", s.InEdge)
		}
	}
	if w.Missing != "" {
		fmt.Fprintf(&b, "  missing: %s\n", w.Missing)
	}
	return b.String()
}

func renderHolds(holds []Hold) string {
	if len(holds) == 0 {
		return "none"
	}
	parts := make([]string, len(holds))
	for i, h := range holds {
		parts[i] = fmt.Sprintf("%s (acquired at #%d)", h.Lock, h.AcqIx)
	}
	return strings.Join(parts, ", ")
}

// Extract builds the witnesses for one run: one per matched violation
// (in the violations' order) followed by one per concurrency report
// no violation claimed (in the report's order). The race report must
// have been produced with detect.Options.Explain so accesses carry
// their clock snapshots and canonical ordering.
func Extract(events []trace.Event, rep *detect.Report, violations []spec.Violation) []Witness {
	idx := newIndex(events)
	var out []Witness
	claimed := map[string]bool{}
	for _, v := range violations {
		w := idx.violationWitness(v)
		if v.Evidence != nil && v.Evidence.Race != nil {
			claimed[raceKey(*v.Evidence.Race)] = true
		}
		out = append(out, w)
	}
	if rep != nil {
		for _, r := range rep.Races {
			if claimed[raceKey(r)] {
				continue
			}
			w := idx.raceWitness(r)
			w.Kind = "Race"
			w.Verdict = fmt.Sprintf("race on %s: %s || %s",
				r.Loc, siteCoord(w.Sites[0]), siteCoord(w.Sites[1]))
			out = append(out, w)
		}
	}
	return out
}

// Overlay marks every witness site on the timeline with an instant
// event, so the textual witness and the timeline cross-reference.
func Overlay(t *trace.Timeline, ws []Witness) {
	for i, w := range ws {
		for _, s := range w.Sites {
			t.AddMarker(s.Rank, s.TID, s.Ix, "witness: "+w.Kind, map[string]any{
				"witness": i,
				"verdict": w.Verdict,
				"site":    fmt.Sprintf("%s at %s", s.Op, siteCoordRaw(s.Rank, s.TID, s.Ix)),
			})
		}
	}
}

func siteCoord(s Site) string { return siteCoordRaw(s.Rank, s.TID, s.Ix) }

func siteCoordRaw(rank, tid int, ix uint64) string {
	return fmt.Sprintf("p%d.t%d#%d", rank, tid, ix)
}

// raceKey identifies a race by its schedule-stable coordinates.
func raceKey(r detect.Race) string {
	return fmt.Sprintf("%s|%d.%d.%d|%d.%d.%d", r.Loc,
		r.First.Rank, r.First.TID, r.First.Ix,
		r.Second.Rank, r.Second.TID, r.Second.Ix)
}

// ---- log index ----

type laneKey struct{ rank, tid int }

// index holds the per-lane view of the event log plus the derived
// edge provenance witnesses are built from.
type index struct {
	events []trace.Event
	// lane maps (rank, tid) to the indices (into events) of that
	// thread's events, in lane order.
	lane map[laneKey][]int
	// ixOf maps an event's global Seq to its per-lane index.
	ixOf map[uint64]uint64
	// handoff maps an Acquire event's Seq to the Release event that
	// handed the lock over (cross-thread only), paired in log order.
	handoff map[uint64]trace.Event
	// forks/joins locate the parent-side events of each sync episode.
	forks map[trace.SyncID]trace.Event
	joins map[trace.SyncID]trace.Event
	// barriers lists each episode's arrival events.
	barriers map[trace.SyncID][]trace.Event
}

func newIndex(events []trace.Event) *index {
	idx := &index{
		events:   events,
		lane:     map[laneKey][]int{},
		ixOf:     map[uint64]uint64{},
		handoff:  map[uint64]trace.Event{},
		forks:    map[trace.SyncID]trace.Event{},
		joins:    map[trace.SyncID]trace.Event{},
		barriers: map[trace.SyncID][]trace.Event{},
	}
	lastRel := map[trace.LockID]*trace.Event{}
	for i, e := range events {
		k := laneKey{e.Rank, e.TID}
		idx.ixOf[e.Seq] = uint64(len(idx.lane[k]))
		idx.lane[k] = append(idx.lane[k], i)
		switch e.Op {
		case trace.OpFork:
			idx.forks[e.Sync] = e
		case trace.OpJoin:
			idx.joins[e.Sync] = e
		case trace.OpBarrier:
			idx.barriers[e.Sync] = append(idx.barriers[e.Sync], e)
		case trace.OpRelease:
			lastRel[e.Lock] = &events[i]
		case trace.OpAcquire:
			if r := lastRel[e.Lock]; r != nil && (r.Rank != e.Rank || r.TID != e.TID) {
				idx.handoff[e.Seq] = *r
			}
			lastRel[e.Lock] = nil
		}
	}
	return idx
}

// violationWitness builds the witness for one matched violation from
// its evidence.
func (idx *index) violationWitness(v spec.Violation) Witness {
	w := Witness{Kind: v.Kind.String(), Rank: v.Rank, Verdict: v.String()}
	switch {
	case v.Evidence == nil:
		// Deduplicated duplicate: the verdict stands alone.
	case v.Evidence.Race != nil:
		rw := idx.raceWitness(*v.Evidence.Race)
		w.Var, w.Sites, w.Missing = rw.Var, rw.Sites, rw.Missing
	default:
		for _, e := range v.Evidence.Sites {
			w.Sites = append(w.Sites, idx.callSite(e))
		}
	}
	return w
}

// raceWitness builds the witness core for one concurrency report.
func (idx *index) raceWitness(r detect.Race) Witness {
	w := Witness{Rank: r.Loc.Rank, Var: r.Loc.Name}
	w.Sites = []Site{
		idx.accessSite(r.First, r.Loc),
		idx.accessSite(r.Second, r.Loc),
	}
	w.Missing = idx.missing(r)
	return w
}

// accessSite converts one side of a race into a located site.
func (idx *index) accessSite(a detect.Access, loc trace.Loc) Site {
	s := Site{
		Rank: a.Rank,
		TID:  a.TID,
		// The analyzer's lane index, NOT ixOf[a.Seq]: the detector and
		// the trace log assign global Seq by their own arrival orders,
		// which need not agree — only the per-lane index is stable.
		Ix: a.Ix,
		Op: fmt.Sprintf("%s %s", a.Op, loc.Name),
	}
	if a.Call != nil {
		s.Call = a.Call.String()
		s.Line = a.Call.Line
	}
	if a.Clock != nil {
		s.Clock = renderClock(a.Clock)
	}
	s.Locks = idx.holdsAt(s.Rank, s.TID, s.Ix)
	s.InEdge = idx.inEdge(s.Rank, s.TID, s.Ix)
	return s
}

// callSite converts a call-ordering evidence event into a site.
func (idx *index) callSite(e trace.Event) Site {
	s := Site{
		Rank: e.Rank,
		TID:  e.TID,
		Ix:   idx.ixOf[e.Seq],
		Op:   "MPI call",
	}
	if e.Call != nil {
		s.Call = e.Call.String()
		s.Line = e.Call.Line
	}
	s.Locks = idx.holdsAt(s.Rank, s.TID, s.Ix)
	s.InEdge = idx.inEdge(s.Rank, s.TID, s.Ix)
	return s
}

// holdsAt replays a lane's lock events up to (excluding) the given
// index and returns the locks held there with their acquisition
// sites, sorted by lock name.
func (idx *index) holdsAt(rank, tid int, at uint64) []Hold {
	held := map[string]uint64{}
	for i, ei := range idx.lane[laneKey{rank, tid}] {
		if uint64(i) >= at {
			break
		}
		e := idx.events[ei]
		switch e.Op {
		case trace.OpAcquire:
			held[e.Lock.Name] = uint64(i)
		case trace.OpRelease:
			delete(held, e.Lock.Name)
		}
	}
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	holds := make([]Hold, len(names))
	for i, n := range names {
		holds[i] = Hold{Lock: n, AcqIx: held[n]}
	}
	return holds
}

// inEdge finds the last realized cross-thread ordering edge into the
// lane at or before the given index — the same edge classes the
// happens-before analysis honors (fork, barrier, join, lock
// hand-off).
func (idx *index) inEdge(rank, tid int, at uint64) string {
	lane := idx.lane[laneKey{rank, tid}]
	if at >= uint64(len(lane)) {
		at = uint64(len(lane))
	} else {
		at++ // the event at the index itself may be the edge (Acquire)
	}
	for i := int(at) - 1; i >= 0; i-- {
		e := idx.events[lane[i]]
		switch e.Op {
		case trace.OpBegin:
			if f, ok := idx.forks[e.Sync]; ok {
				return fmt.Sprintf("forked by p%d.t%d (region p%d/%d) at #%d",
					f.Rank, f.TID, e.Sync.Rank, e.Sync.Seq, i)
			}
		case trace.OpJoin:
			return fmt.Sprintf("joined region p%d/%d at #%d", e.Sync.Rank, e.Sync.Seq, i)
		case trace.OpBarrier:
			var peers []string
			for _, b := range idx.barriers[e.Sync] {
				if b.Rank != rank || b.TID != tid {
					peers = append(peers, fmt.Sprintf("p%d.t%d", b.Rank, b.TID))
				}
			}
			sort.Strings(peers)
			return fmt.Sprintf("barrier p%d/%d at #%d with %s",
				e.Sync.Rank, e.Sync.Seq, i, strings.Join(peers, ", "))
		case trace.OpAcquire:
			if rel, ok := idx.handoff[e.Seq]; ok {
				return fmt.Sprintf("acquired %s at #%d after p%d.t%d released it at #%d",
					e.Lock.Name, i, rel.Rank, rel.TID, idx.ixOf[rel.Seq])
			}
		}
	}
	return ""
}

// missing renders the absent happens-before edge (the concurrency
// certificate over the captured clocks), or — when the pair is
// ordered but lockset-flagged — the failed lockset condition.
func (idx *index) missing(r detect.Race) string {
	a, b := r.First, r.Second
	var parts []string
	if r.LocksetRace {
		parts = append(parts, fmt.Sprintf("no common lock protects the accesses (locksets %s vs %s)",
			renderLockset(a.Lockset), renderLockset(b.Lockset)))
	}
	switch {
	case a.Clock == nil || b.Clock == nil:
		if r.HBRace {
			parts = append(parts, "no fork/join, barrier, or lock hand-off edge orders the pair")
		}
	case r.HBRace:
		if cert, ok := vclock.WhyConcurrent(a.Clock, b.Clock); ok {
			parts = append(parts, fmt.Sprintf(
				"no fork/join, barrier, or lock hand-off edge orders the pair: %s reached %s=%d (the other side saw %d) and %s reached %s=%d (the other side saw %d)",
				gidName(vclock.TID(sim.GID(a.Rank, a.TID))), gidName(cert.AT), cert.AV, b.Clock.Get(cert.AT),
				gidName(vclock.TID(sim.GID(b.Rank, b.TID))), gidName(cert.BT), cert.BV, a.Clock.Get(cert.BT)))
		}
	default:
		parts = append(parts, "the accesses are ordered in this schedule, but only by timing the lockset does not guarantee")
	}
	return strings.Join(parts, "; ")
}

func renderLockset(names []string) string {
	if len(names) == 0 {
		return "{}"
	}
	return "{" + strings.Join(names, ", ") + "}"
}

// renderClock renders a vector clock with (rank, thread) component
// names, components sorted by thread identity.
func renderClock(c vclock.VC) string {
	gids := make([]vclock.TID, 0, len(c))
	for g, v := range c {
		if v != 0 {
			gids = append(gids, g)
		}
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	parts := make([]string, len(gids))
	for i, g := range gids {
		parts[i] = fmt.Sprintf("%s:%d", gidName(g), c.Get(g))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// gidName renders a clock-space thread identity as pR.tT.
func gidName(g vclock.TID) string {
	rank, tid := sim.RankTID(g)
	return fmt.Sprintf("p%d.t%d", rank, tid)
}
