package sched

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenScheduleBytes pins the wire format byte for byte: the
// header layout, the per-kind payload keys, the 1-based rank
// encodings and the canonical record order. Any format change must be
// deliberate — regenerate with `go test ./internal/sched -update` and
// bump Version if old readers can no longer parse the stream.
func TestGoldenScheduleBytes(t *testing.T) {
	got := fullRecorder().Bytes()
	path := filepath.Join("testdata", "golden.jsonl")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
