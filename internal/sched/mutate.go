package sched

// Mutation and validation API over recorded schedules. A v2 schedule
// pins every nondeterministic decision of a run, which makes it a
// mutable search space: the explorer (internal/explore) perturbs one
// pinned decision at a time — re-target a match, swap two lock grant
// tickets, re-elect a `single` winner, permute collective arrival
// ordinals, move a crash point, toggle a transient send fault — and
// replays the mutant. Mutations operate on plain record lists keyed by
// (kind, rank, tid, seq); ApplyMutations and FromRecords validate so
// an infeasible edit surfaces as a typed error before any replay runs.

import (
	"bytes"
	"fmt"
	"sort"

	"home/internal/chaos"
)

// Key identifies one record of a schedule: the record kind plus its
// schedule point. Crash records, which carry no point, use Seq 0.
type Key struct {
	Kind string `json:"k"`
	Rank int    `json:"r"`
	TID  int    `json:"t"`
	Seq  uint64 `json:"q"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s@(%d,%d,%d)", k.Kind, k.Rank, k.TID, k.Seq)
}

// RecordKey returns the record's identity key.
func (r Record) RecordKey() Key { return Key{r.Kind, r.Rank, r.TID, r.Seq} }

// Mutation operators. Each targets records by key so a mutation list
// stays applicable when other list entries are dropped (delta-debug
// minimization removes entries independently).
const (
	// OpFlipMatch swaps the matched-message identities of two match
	// records (A, B) — the wildcard receive/probe flip.
	OpFlipMatch = "flip-match"
	// OpSwapLocks swaps the grant tickets of two lock records (A, B).
	OpSwapLocks = "swap-locks"
	// OpReassignSingle re-elects the `single` winner of record A to
	// thread Arg of the same rank and construct ordinal.
	OpReassignSingle = "reassign-single"
	// OpPermuteColl swaps the arrival ordinals of two coll records
	// (A, B) belonging to the same collective instance.
	OpPermuteColl = "permute-coll"
	// OpCrashLater moves a recorded death later. A fail-record target
	// deletes that single record, so the schedule point that observed
	// the failure proceeds live instead — the death surfaces one
	// observation later on that thread. A crash-record target revives
	// the rank wholesale: the crash record, every fail record observing
	// that rank's death, and the rank's own abort records are deleted —
	// the failure never happened.
	OpCrashLater = "crash-later"
	// OpCrashEarlier clones fail record A one schedule point earlier on
	// the same thread, so the failure is observed one call sooner.
	OpCrashEarlier = "crash-earlier"
	// OpToggleSend toggles the transient-fault payload of send record
	// A: a clean send gains one retry (with a small virtual backoff), a
	// faulty one loses its retries.
	OpToggleSend = "toggle-send"
)

// Mutation is one targeted edit of a record list.
type Mutation struct {
	Op  string `json:"op"`
	A   Key    `json:"a"`
	B   Key    `json:"b,omitempty"`
	Arg int    `json:"arg,omitempty"`
}

func (m Mutation) String() string {
	switch m.Op {
	case OpFlipMatch, OpSwapLocks, OpPermuteColl:
		return fmt.Sprintf("%s %s<->%s", m.Op, m.A, m.B)
	case OpReassignSingle:
		return fmt.Sprintf("%s %s ->t%d", m.Op, m.A, m.Arg)
	default:
		return fmt.Sprintf("%s %s", m.Op, m.A)
	}
}

// SortRecords sorts records into the canonical wire order
// (rank, tid, seq, kind).
func SortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Kind < b.Kind
	})
}

// ValidateRecords checks a record list for structural soundness:
// known kinds, unique keys (crash records dedup by rank), per-kind
// payload sanity. It does not prove the schedule feasible — replay
// divergence and deadlock-by-construction are dynamic outcomes — but
// it rejects every edit that could not load as a schedule at all.
func ValidateRecords(recs []Record) error {
	seen := make(map[Key]struct{}, len(recs))
	for _, rec := range recs {
		k := rec.RecordKey()
		if rec.Kind == KindCrash {
			k.TID, k.Seq = 0, 0
		}
		if _, dup := seen[k]; dup {
			return fmt.Errorf("sched: duplicate record for %s", k)
		}
		seen[k] = struct{}{}
		if rec.Rank < 0 || rec.TID < 0 {
			return fmt.Errorf("sched: negative coordinate on %s", k)
		}
		switch rec.Kind {
		case KindSend:
			if rec.Retries < 0 || rec.DelayNs < 0 || rec.BackoffNs < 0 || rec.JitterNs < 0 {
				return fmt.Errorf("sched: negative send payload on %s", k)
			}
		case KindStall:
			if rec.StallNs < 0 || rec.StallWallNs < 0 {
				return fmt.Errorf("sched: negative stall payload on %s", k)
			}
		case KindRMA:
			if rec.DelayNs < 0 {
				return fmt.Errorf("sched: negative rma delay on %s", k)
			}
		case KindFail:
			if rec.Dead1 < 1 {
				return fmt.Errorf("sched: fail record without dead rank on %s", k)
			}
		case KindMatch, KindPoll:
			if rec.SrcSeq > 0 && (rec.Src1 < 1 || rec.STID1 < 1) {
				return fmt.Errorf("sched: match payload without sender identity on %s", k)
			}
		case KindColl:
			if rec.Comm1 < 1 || rec.CollSeq < 1 || rec.Ord < 1 {
				return fmt.Errorf("sched: incomplete coll payload on %s", k)
			}
		case KindLock:
			if rec.Ticket < 1 {
				return fmt.Errorf("sched: lock record without ticket on %s", k)
			}
		case KindChunk:
			if rec.End < rec.Base {
				return fmt.Errorf("sched: inverted chunk range on %s", k)
			}
		case KindAbort, KindSingle, KindCrash:
			// Key-only kinds.
		default:
			return fmt.Errorf("sched: unknown record kind %q on %s", rec.Kind, k)
		}
	}
	return nil
}

// FromRecords builds a replayable schedule from a plain record list
// (current wire version), validating first. The input is not mutated.
func FromRecords(plan chaos.Plan, recs []Record) (*Schedule, error) {
	if err := ValidateRecords(recs); err != nil {
		return nil, err
	}
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	SortRecords(sorted)
	return newSchedule(plan, Version, sorted)
}

// EncodeRecords serializes a record list as a schedule stream
// (current wire version) without requiring a Recorder — the mutant
// round-trip path of the explorer.
func EncodeRecords(plan chaos.Plan, recs []Record) []byte {
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	SortRecords(sorted)
	var buf bytes.Buffer
	writeStream(&buf, plan, Version, sorted) // cannot fail on a bytes.Buffer
	return buf.Bytes()
}

// ApplyMutations applies a mutation list to a record list, returning a
// new sorted record list. A mutation whose target is missing or whose
// edit is structurally invalid returns an error — the caller
// classifies it as an infeasible mutant, it never panics or produces
// an unloadable stream.
func ApplyMutations(recs []Record, muts []Mutation) ([]Record, error) {
	out := make([]Record, len(recs))
	copy(out, recs)
	for _, m := range muts {
		idx := make(map[Key]int, len(out))
		for i, r := range out {
			idx[r.RecordKey()] = i
		}
		find := func(k Key, kind string) (int, error) {
			i, ok := idx[k]
			if !ok {
				return 0, fmt.Errorf("sched: %s targets missing record %s", m.Op, k)
			}
			if out[i].Kind != kind {
				return 0, fmt.Errorf("sched: %s targets %s record %s, want %s", m.Op, out[i].Kind, k, kind)
			}
			return i, nil
		}
		switch m.Op {
		case OpFlipMatch:
			i, err := find(m.A, KindMatch)
			if err != nil {
				return nil, err
			}
			j, err := find(m.B, KindMatch)
			if err != nil {
				return nil, err
			}
			if i == j {
				return nil, fmt.Errorf("sched: %s needs two distinct records", m.Op)
			}
			out[i].Src1, out[j].Src1 = out[j].Src1, out[i].Src1
			out[i].STID1, out[j].STID1 = out[j].STID1, out[i].STID1
			out[i].SrcSeq, out[j].SrcSeq = out[j].SrcSeq, out[i].SrcSeq
		case OpSwapLocks:
			i, err := find(m.A, KindLock)
			if err != nil {
				return nil, err
			}
			j, err := find(m.B, KindLock)
			if err != nil {
				return nil, err
			}
			if i == j {
				return nil, fmt.Errorf("sched: %s needs two distinct records", m.Op)
			}
			out[i].Ticket, out[j].Ticket = out[j].Ticket, out[i].Ticket
		case OpReassignSingle:
			i, err := find(m.A, KindSingle)
			if err != nil {
				return nil, err
			}
			if m.Arg < 0 || m.Arg == out[i].TID {
				return nil, fmt.Errorf("sched: %s re-elects %s to its own thread %d", m.Op, m.A, m.Arg)
			}
			moved := m.A
			moved.TID = m.Arg
			if _, clash := idx[moved]; clash {
				return nil, fmt.Errorf("sched: %s collides with existing %s", m.Op, moved)
			}
			out[i].TID = m.Arg
		case OpPermuteColl:
			i, err := find(m.A, KindColl)
			if err != nil {
				return nil, err
			}
			j, err := find(m.B, KindColl)
			if err != nil {
				return nil, err
			}
			if i == j {
				return nil, fmt.Errorf("sched: %s needs two distinct records", m.Op)
			}
			if out[i].Comm1 != out[j].Comm1 || out[i].CollSeq != out[j].CollSeq {
				return nil, fmt.Errorf("sched: %s targets different collective instances", m.Op)
			}
			out[i].Ord, out[j].Ord = out[j].Ord, out[i].Ord
		case OpCrashLater:
			if m.A.Kind == KindCrash {
				if _, err := find(Key{KindCrash, m.A.Rank, 0, 0}, KindCrash); err != nil {
					return nil, err
				}
				kept := out[:0]
				for _, r := range out {
					switch {
					case r.Kind == KindCrash && r.Rank == m.A.Rank:
					case r.Kind == KindFail && r.DeadRank() == m.A.Rank:
					case r.Kind == KindAbort && r.Rank == m.A.Rank:
					default:
						kept = append(kept, r)
					}
				}
				out = kept
			} else {
				i, err := find(m.A, KindFail)
				if err != nil {
					return nil, err
				}
				out = append(out[:i], out[i+1:]...)
			}
		case OpCrashEarlier:
			i, err := find(m.A, KindFail)
			if err != nil {
				return nil, err
			}
			if out[i].Seq < 2 {
				return nil, fmt.Errorf("sched: %s has no earlier point before %s", m.Op, m.A)
			}
			clone := out[i]
			clone.Seq--
			if _, clash := idx[clone.RecordKey()]; clash {
				return nil, fmt.Errorf("sched: %s collides with existing %s", m.Op, clone.RecordKey())
			}
			out = append(out, clone)
		case OpToggleSend:
			i, err := find(m.A, KindSend)
			if err != nil {
				return nil, err
			}
			if out[i].Retries == 0 {
				out[i].Retries = 1
				if out[i].BackoffNs == 0 {
					out[i].BackoffNs = 1000
				}
			} else {
				out[i].Retries, out[i].BackoffNs = 0, 0
			}
		default:
			return nil, fmt.Errorf("sched: unknown mutation operator %q", m.Op)
		}
	}
	SortRecords(out)
	if err := ValidateRecords(out); err != nil {
		return nil, err
	}
	return out, nil
}
