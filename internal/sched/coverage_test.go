package sched

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCoverageGolden pins the coverage signature grammar against the
// canonical full-kind schedule (testdata/golden.jsonl). The explorer
// will treat these signatures as stable identities across corpora, so
// a grammar change must be deliberate — regenerate with -update.
func TestCoverageGolden(t *testing.T) {
	s, err := ReadFile(filepath.Join("testdata", "golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cov := s.Coverage()
	got, err := json.MarshalIndent(cov, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "coverage.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("coverage drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCoverageOf(t *testing.T) {
	recs := []Record{
		{Kind: KindMatch, Rank: 0, TID: 1, Seq: 2, Src1: 1, STID1: 1, SrcSeq: 1},
		{Kind: KindPoll, Rank: 1, TID: 0, Seq: 6},
		{Kind: KindPoll, Rank: 1, TID: 0, Seq: 7, Src1: 3, STID1: 2, SrcSeq: 9},
		{Kind: KindColl, Rank: 0, TID: 0, Seq: 8, Comm1: 1, CollSeq: 1, Ord: 1},
		{Kind: KindColl, Rank: 1, TID: 0, Seq: 9, Comm1: 1, CollSeq: 1, Ord: 2},
		{Kind: KindLock, Rank: 1, TID: 1, Seq: 9, Ticket: 1},
		{Kind: KindCrash, Rank: 0},
		{Kind: KindFail, Rank: 0, TID: 0, Seq: 3, Dead1: 1},
		{Kind: KindAbort, Rank: 1, TID: 1, Seq: 5},
		// Fault decisions carry no coverage.
		{Kind: KindSend, Rank: 1, TID: 0, Seq: 2, DelayNs: 40},
		{Kind: KindStall, Rank: 0, TID: 1, Seq: 1, StallNs: 500},
	}
	cov := CoverageOf(recs)
	want := Coverage{
		Matches: []string{
			"p0.t1@2<-p0.t0#1",
			"poll:p1.t0@6",
			"poll:p1.t0@7<-p2.t1#9",
		},
		Collectives: []string{"c0#1[p0.t0:1 p1.t0:2]"},
		LockOrders:  []string{"p1.t1@9=1"},
		CrashPoints: []string{"abort:p1.t1@5", "crash:p0", "fail:p0.t0@3<-p0"},
	}
	if !reflect.DeepEqual(cov, want) {
		t.Errorf("CoverageOf = %+v\nwant %+v", cov, want)
	}
	if cov.Total() != 8 {
		t.Errorf("Total = %d, want 8", cov.Total())
	}
	counts := cov.Counts()
	if counts != (CoverageCounts{Matches: 3, Collectives: 1, LockOrders: 1, CrashPoints: 3}) {
		t.Errorf("Counts = %+v", counts)
	}
	// Duplicate decisions collapse.
	if dup := CoverageOf(append(recs, recs...)); !reflect.DeepEqual(dup, cov) {
		t.Errorf("duplicates changed coverage: %+v", dup)
	}
}

func TestCoverageMerge(t *testing.T) {
	a := Coverage{
		Matches:     []string{"m1", "m2"},
		CrashPoints: []string{"crash:p0"},
	}
	b := Coverage{
		Matches:    []string{"m2", "m3"},
		LockOrders: []string{"l1"},
	}
	got := a.Merge(b)
	want := Coverage{
		Matches:     []string{"m1", "m2", "m3"},
		LockOrders:  []string{"l1"},
		CrashPoints: []string{"crash:p0"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Merge = %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(a.Merge(b), b.Merge(a)) {
		t.Error("Merge not commutative")
	}
	if !reflect.DeepEqual(got.Merge(Coverage{}), got) {
		t.Error("empty Merge not identity")
	}
	c := Coverage{Collectives: []string{"c0#1[x]"}}
	if !reflect.DeepEqual(a.Merge(b).Merge(c), a.Merge(b.Merge(c))) {
		t.Error("Merge not associative")
	}
}

func TestRecorderAndScheduleCoverageAgree(t *testing.T) {
	r := fullRecorder()
	s, err := r.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	rc, sc := r.Coverage(), s.Coverage()
	if !reflect.DeepEqual(rc, sc) {
		t.Errorf("recorder coverage %+v != schedule coverage %+v", rc, sc)
	}
	if rc.Total() == 0 {
		t.Error("full recorder produced empty coverage")
	}
	if len(r.Records()) != r.Len() {
		t.Errorf("Records len %d != Len %d", len(r.Records()), r.Len())
	}
}
