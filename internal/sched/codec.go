package sched

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"home/internal/chaos"
)

// Wire format constants. A schedule stream is one header line followed
// by one JSON record per line, sorted by (rank, tid, seq, kind).
//
// Version history:
//
//	1  fault decisions and failure/match/poll resolutions — replay
//	   reproduces the report identity (verdicts, Partial, DeadRanks,
//	   RankCoverage, EventsAnalyzed)
//	2  adds the order families (coll/lock/single/chunk) — replay also
//	   reproduces virtual time: Makespan, event timestamps, timelines
//
// The reader accepts every version <= Version; a v1 stream decoded by
// a v2 reader replays with the v1 guarantee (Schedule.PinsOrders
// reports which one applies).
//
// Version 3 is a *container*, not new semantics: the same records in
// the binary per-lane framing of binary.go, carrying their JSONL base
// version (1 or 2) so transcoding is lossless in both directions.
// Read sniffs the container automatically.
const (
	Format  = "home-sched"
	Version = 2
)

// header is the first line of a schedule stream. It embeds the full
// chaos plan (not its spec string: knob values that ParseSpec cannot
// express, like a zero probability overriding a Perturb default, must
// survive the round trip exactly).
type header struct {
	Format  string     `json:"format"`
	Version int        `json:"version"`
	Plan    chaos.Plan `json:"plan"`
}

// ErrTruncated reports a schedule stream cut mid-record. Mirrors
// trace.ErrTruncated: the reader still returns the salvaged prefix.
var ErrTruncated = errors.New("sched: schedule stream truncated")

// TruncatedError carries the salvaged-record count of a truncated
// stream; it unwraps to ErrTruncated.
type TruncatedError struct {
	// Records is the number of complete records salvaged.
	Records int
	// Err is the underlying decode error.
	Err error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("sched: schedule stream truncated after %d records: %v", e.Records, e.Err)
}

func (e *TruncatedError) Unwrap() error { return ErrTruncated }

// Write serializes the recorded schedule: a versioned header line
// carrying the chaos plan, then the records in canonical order.
func (r *Recorder) Write(w io.Writer) error {
	plan, recs := r.snapshot()
	return writeStream(w, plan, Version, recs)
}

// writeStream serializes an already-sorted record list as a schedule
// stream.
func writeStream(w io.Writer, plan chaos.Plan, version int, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Format: Format, Version: version, Plan: plan}); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Bytes serializes the recorded schedule to memory.
func (r *Recorder) Bytes() []byte {
	var buf bytes.Buffer
	r.Write(&buf) // cannot fail on a bytes.Buffer
	return buf.Bytes()
}

// Schedule converts the recorded schedule into a replay Source. The
// conversion goes through the wire format, so every replay — even an
// in-memory one — exercises the exact codec a file round trip would.
func (r *Recorder) Schedule() (*Schedule, error) {
	return Read(bytes.NewReader(r.Bytes()))
}

// WriteFile serializes the recorded schedule to a file.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a schedule stream in either container — it sniffs the
// v3 binary magic and falls back to JSONL. A stream cut mid-record
// returns the salvaged prefix together with a *TruncatedError
// (unwrapping to ErrTruncated), mirroring trace.ReadJSON — a replay
// of a salvaged prefix forces the recorded interleaving as far as it
// goes. A *TruncatedError always comes with a non-nil salvaged
// schedule; a stream cut before its header is complete (including an
// empty stream) is a hard error, because without the embedded plan
// there is no prefix a replay could force.
func Read(rd io.Reader) (*Schedule, error) {
	br := bufio.NewReader(rd)
	if magic, err := br.Peek(len(BinaryMagic)); err == nil && string(magic) == BinaryMagic {
		return readBinary(br)
	}
	dec := json.NewDecoder(br)
	var h header
	if err := dec.Decode(&h); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("sched: schedule stream truncated in header: %w", err)
		}
		return nil, fmt.Errorf("sched: bad schedule header: %w", err)
	}
	if h.Format != Format {
		return nil, fmt.Errorf("sched: not a schedule stream (format %q, want %q)", h.Format, Format)
	}
	if h.Version > Version {
		return nil, fmt.Errorf("sched: schedule version %d is newer than supported %d", h.Version, Version)
	}
	var recs []Record
	for {
		var rec Record
		err := dec.Decode(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				s, serr := newSchedule(h.Plan, h.Version, recs)
				if serr != nil {
					return nil, serr
				}
				return s, &TruncatedError{Records: len(recs), Err: err}
			}
			return nil, fmt.Errorf("sched: bad schedule record %d: %w", len(recs)+1, err)
		}
		recs = append(recs, rec)
	}
	return newSchedule(h.Plan, h.Version, recs)
}

// ReadFile parses a schedule file.
func ReadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
