package sched

// Binary schedule container (format v3). The JSONL container spends
// most of its bytes on repeated JSON keys and re-stating the (rank,
// tid) lane on every record; v3 stores the canonical record order as
// per-lane streams — one lane header per (rank, tid), then
// delta-encoded schedule points — with varint payloads, typically
// 3-5× smaller and decoded without a JSON parser.
//
// Layout (all integers unsigned varints unless marked zigzag):
//
//	magic "HSB3"
//	baseVersion          semantic version of the records (1 or 2 — the
//	                     JSONL version the stream transcodes to; the
//	                     container is v3, the guarantees are the base
//	                     version's)
//	planLen, planJSON    the embedded chaos plan, verbatim JSON
//	tokens:
//	  0x01 rank tid      lane header; resets the seq delta base to 0
//	  0x10+kind seqΔ …   one record: kind index, seq delta within the
//	                     lane (canonical order never decreases), then
//	                     the kind's payload fields
//	  0x00 count         end marker with the record count (integrity
//	                     check against silent tail loss)
//
// A stream cut mid-token salvages the complete-record prefix and
// returns *TruncatedError, exactly like the JSONL reader; any
// malformed token (unknown kind, varint overflow, count mismatch) is
// a hard typed error. A cut inside the header — before the embedded
// plan is complete — is also a hard error: with no plan a replay
// could only run chaos-free and silently diverge from the recording,
// so there is nothing meaningful to salvage. sched.Read sniffs the
// magic, so every consumer of schedule streams accepts both
// containers transparently.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"home/internal/chaos"
)

// BinaryMagic introduces a v3 binary schedule stream.
const BinaryMagic = "HSB3"

// BinaryVersion is the container version of the binary codec.
const BinaryVersion = 3

// Token bytes.
const (
	tokEnd  = 0x00
	tokLane = 0x01
	tokKind = 0x10
)

// kindIndex fixes the wire order of record kinds. Appending is safe;
// reordering breaks decoding of existing streams.
var kindIndex = []string{
	KindSend, KindStall, KindRMA, KindFail, KindAbort, KindMatch,
	KindPoll, KindCrash, KindColl, KindLock, KindSingle, KindChunk,
}

var kindOf = func() map[string]int {
	m := make(map[string]int, len(kindIndex))
	for i, k := range kindIndex {
		m[k] = i
	}
	return m
}()

func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeBinary serializes an already-canonical record list.
func encodeBinary(plan chaos.Plan, baseVersion int, recs []Record) ([]byte, error) {
	planJSON, err := json.Marshal(plan)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(BinaryMagic)+len(planJSON)+8+len(recs)*8)
	out = append(out, BinaryMagic...)
	out = binary.AppendUvarint(out, uint64(baseVersion))
	out = binary.AppendUvarint(out, uint64(len(planJSON)))
	out = append(out, planJSON...)

	laneRank, laneTID := -1, -1
	var prevSeq uint64
	for _, rec := range recs {
		ki, ok := kindOf[rec.Kind]
		if !ok {
			return nil, fmt.Errorf("sched: cannot binary-encode unknown record kind %q", rec.Kind)
		}
		if rec.Rank != laneRank || rec.TID != laneTID || rec.Seq < prevSeq {
			out = append(out, tokLane)
			out = binary.AppendUvarint(out, uint64(rec.Rank))
			out = binary.AppendUvarint(out, uint64(rec.TID))
			laneRank, laneTID, prevSeq = rec.Rank, rec.TID, 0
		}
		out = append(out, byte(tokKind+ki))
		out = binary.AppendUvarint(out, rec.Seq-prevSeq)
		prevSeq = rec.Seq
		out = appendPayload(out, rec)
	}
	out = append(out, tokEnd)
	out = binary.AppendUvarint(out, uint64(len(recs)))
	return out, nil
}

// appendPayload writes the per-kind payload fields. The field lists
// mirror what the Record* constructors populate; fields outside a
// kind's list do not survive the binary round trip (the JSONL codec
// has the same per-kind contract, it just doesn't enforce it).
func appendPayload(out []byte, rec Record) []byte {
	switch rec.Kind {
	case KindSend:
		out = binary.AppendUvarint(out, zig(rec.DelayNs))
		b := byte(0)
		if rec.Reorder {
			b = 1
		}
		out = append(out, b)
		out = binary.AppendUvarint(out, uint64(rec.Retries))
		out = binary.AppendUvarint(out, zig(rec.BackoffNs))
		out = binary.AppendUvarint(out, zig(rec.JitterNs))
	case KindStall:
		out = binary.AppendUvarint(out, zig(rec.StallNs))
		out = binary.AppendUvarint(out, zig(rec.StallWallNs))
	case KindRMA:
		out = binary.AppendUvarint(out, zig(rec.DelayNs))
	case KindFail:
		out = binary.AppendUvarint(out, uint64(rec.Dead1))
	case KindAbort, KindCrash, KindSingle:
		// key-only records
	case KindMatch, KindPoll:
		out = binary.AppendUvarint(out, uint64(rec.Src1))
		out = binary.AppendUvarint(out, uint64(rec.STID1))
		out = binary.AppendUvarint(out, rec.SrcSeq)
	case KindColl:
		out = binary.AppendUvarint(out, uint64(rec.Comm1))
		out = binary.AppendUvarint(out, zig(rec.CollSeq))
		out = binary.AppendUvarint(out, uint64(rec.Ord))
		out = binary.AppendUvarint(out, uint64(rec.NewComm1))
	case KindLock:
		out = binary.AppendUvarint(out, rec.Ticket)
	case KindChunk:
		out = binary.AppendUvarint(out, zig(rec.Base))
		out = binary.AppendUvarint(out, zig(rec.End))
	}
	return out
}

// readBinary decodes a v3 stream whose magic has been consumed (or
// will be — it tolerates either). Truncation salvages the
// complete-record prefix.
func readBinary(br *bufio.Reader) (*Schedule, error) {
	magic := make([]byte, len(BinaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, headerErr(err)
	}
	if string(magic) != BinaryMagic {
		return nil, fmt.Errorf("sched: not a binary schedule stream (magic %q)", magic)
	}
	baseVersion, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, headerErr(err)
	}
	if baseVersion == 0 || baseVersion > Version {
		return nil, fmt.Errorf("sched: binary stream base version %d is outside supported 1..%d", baseVersion, Version)
	}
	planLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, headerErr(err)
	}
	const maxPlan = 1 << 20
	if planLen > maxPlan {
		return nil, fmt.Errorf("sched: binary stream plan length %d exceeds limit", planLen)
	}
	planJSON := make([]byte, planLen)
	if _, err := io.ReadFull(br, planJSON); err != nil {
		return nil, headerErr(err)
	}
	var plan chaos.Plan
	if err := json.Unmarshal(planJSON, &plan); err != nil {
		return nil, fmt.Errorf("sched: binary stream embeds malformed plan: %w", err)
	}

	var recs []Record
	laneRank, laneTID := -1, -1
	var prevSeq uint64
	salvage := func(err error) (*Schedule, error) {
		s, serr := newSchedule(plan, int(baseVersion), recs)
		if serr != nil {
			return nil, serr
		}
		return s, &TruncatedError{Records: len(recs), Err: err}
	}
	for {
		tok, err := br.ReadByte()
		if err != nil {
			return salvage(err)
		}
		switch {
		case tok == tokEnd:
			count, err := binary.ReadUvarint(br)
			if err != nil {
				return salvage(err)
			}
			if count != uint64(len(recs)) {
				return nil, fmt.Errorf("sched: binary stream record count %d does not match %d decoded records", count, len(recs))
			}
			return newSchedule(plan, int(baseVersion), recs)
		case tok == tokLane:
			r, err := binary.ReadUvarint(br)
			if err != nil {
				return salvage(err)
			}
			t, err := binary.ReadUvarint(br)
			if err != nil {
				return salvage(err)
			}
			laneRank, laneTID, prevSeq = int(r), int(t), 0
		case tok >= tokKind && int(tok-tokKind) < len(kindIndex):
			if laneRank < 0 {
				return nil, fmt.Errorf("sched: binary stream record before any lane header")
			}
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return salvage(err)
			}
			rec := Record{Kind: kindIndex[tok-tokKind], Rank: laneRank, TID: laneTID, Seq: prevSeq + delta}
			prevSeq = rec.Seq
			if err := readPayload(br, &rec); err != nil {
				return salvage(err)
			}
			recs = append(recs, rec)
		default:
			return nil, fmt.Errorf("sched: binary stream has unknown token 0x%02x after %d records", tok, len(recs))
		}
	}
}

// headerErr wraps any failure before the embedded plan has fully
// decoded. Deliberately NOT a *TruncatedError: the salvage contract
// is "replay the recorded prefix of decisions under the recorded
// plan", and with the plan missing a replay could only run chaos-free
// and silently diverge, so header damage is hard like corruption.
func headerErr(err error) error {
	return fmt.Errorf("sched: binary stream truncated or corrupt in header: %w", err)
}

// readPayload decodes the per-kind payload fields into rec.
func readPayload(br *bufio.Reader, rec *Record) error {
	u := func() (uint64, error) { return binary.ReadUvarint(br) }
	switch rec.Kind {
	case KindSend:
		v, err := u()
		if err != nil {
			return err
		}
		rec.DelayNs = unzig(v)
		b, err := br.ReadByte()
		if err != nil {
			return err
		}
		rec.Reorder = b != 0
		if v, err = u(); err != nil {
			return err
		}
		rec.Retries = int(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.BackoffNs = unzig(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.JitterNs = unzig(v)
	case KindStall:
		v, err := u()
		if err != nil {
			return err
		}
		rec.StallNs = unzig(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.StallWallNs = unzig(v)
	case KindRMA:
		v, err := u()
		if err != nil {
			return err
		}
		rec.DelayNs = unzig(v)
	case KindFail:
		v, err := u()
		if err != nil {
			return err
		}
		rec.Dead1 = int(v)
	case KindAbort, KindCrash, KindSingle:
	case KindMatch, KindPoll:
		v, err := u()
		if err != nil {
			return err
		}
		rec.Src1 = int(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.STID1 = int(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.SrcSeq = v
	case KindColl:
		v, err := u()
		if err != nil {
			return err
		}
		rec.Comm1 = int(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.CollSeq = unzig(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.Ord = int(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.NewComm1 = int(v)
	case KindLock:
		v, err := u()
		if err != nil {
			return err
		}
		rec.Ticket = v
	case KindChunk:
		v, err := u()
		if err != nil {
			return err
		}
		rec.Base = unzig(v)
		if v, err = u(); err != nil {
			return err
		}
		rec.End = unzig(v)
	}
	return nil
}

// WriteBinary serializes the recorded schedule in the v3 binary
// container (record semantics stay at the current JSONL Version).
func (r *Recorder) WriteBinary(w io.Writer) error {
	plan, recs := r.snapshot()
	data, err := encodeBinary(plan, Version, recs)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// BytesBinary serializes the recorded schedule to memory in the v3
// binary container.
func (r *Recorder) BytesBinary() []byte {
	plan, recs := r.snapshot()
	data, err := encodeBinary(plan, Version, recs)
	if err != nil {
		// Recorder-produced records always carry known kinds and the
		// plan marshals (it arrived as a struct); keep the signature
		// allocation-free for callers.
		panic(err)
	}
	return data
}

// WriteFileBinary serializes the recorded schedule to a file in the
// v3 binary container.
func (r *Recorder) WriteFileBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MarshalBinary re-encodes a decoded schedule in the v3 binary
// container, preserving its base version and record order — one
// direction of the lossless transcode.
func (s *Schedule) MarshalBinary() ([]byte, error) {
	return encodeBinary(s.plan, s.version, s.recs)
}

// MarshalJSONL re-encodes a decoded schedule in the JSONL container
// at its base version — the other direction of the transcode. A
// v2→v3→v2 round trip is byte-identical.
func (s *Schedule) MarshalJSONL() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeStream(&buf, s.plan, s.version, s.recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Binary reports whether raw bytes look like a v3 binary stream.
func Binary(data []byte) bool {
	return len(data) >= len(BinaryMagic) && string(data[:len(BinaryMagic)]) == BinaryMagic
}
