package sched

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"home/internal/chaos"
)

// fullRecorder builds a recorder exercising every record kind, with
// payload values chosen to stress the 1-based encodings (rank 0, tid 0
// must survive omitempty).
func fullRecorder() *Recorder {
	r := NewRecorder()
	r.SetPlan(chaos.Plan{Seed: 7, DelayProb: 0.5, MaxDelayNs: 1000, CrashRank: 1, CrashAfterCalls: 3})
	r.RecordSend(1, 0, 2, chaos.SendFault{DelayNs: 40, Reorder: true, Retries: 2, BackoffNs: 10, JitterWall: 3 * time.Millisecond})
	r.RecordStall(0, 1, 1, chaos.Stall{VirtualNs: 500, Wall: time.Millisecond})
	r.RecordRMADelay(2, 1, 4, 77)
	r.RecordFail(0, 0, 3, 0) // observes rank 0's failure: Dead1 encoding
	r.RecordAbort(1, 1, 5)
	r.RecordMatch(0, 1, 2, chaos.MsgID{Rank: 0, TID: 0, Seq: 1}) // rank 0, tid 0 sender
	r.RecordPoll(1, 0, 6, chaos.MsgID{})                         // bare completion poll
	r.RecordPoll(1, 0, 7, chaos.MsgID{Rank: 2, TID: 1, Seq: 9})
	r.RecordCrash(0)
	return r
}

func TestScheduleRoundTrip(t *testing.T) {
	rec := fullRecorder()
	s, err := Read(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := s.Plan(); got.Seed != 7 || got.DelayProb != 0.5 || got.CrashRank != 1 || got.CrashAfterCalls != 3 {
		t.Errorf("plan did not round-trip: %+v", got)
	}
	if s.Len() != rec.Len() {
		t.Errorf("len = %d, recorded %d", s.Len(), rec.Len())
	}

	if f, ok := s.SendFault(1, 0, 2); !ok || f.DelayNs != 40 || !f.Reorder || f.Retries != 2 || f.BackoffNs != 10 {
		t.Errorf("send fault = %+v, %v", f, ok)
	} else if f.JitterWall != 0 {
		// Wall-clock payloads are recorded for diagnosis but never
		// re-applied: replay forces the race the jitter provoked.
		t.Errorf("replayed send re-applies wall jitter: %v", f.JitterWall)
	}
	if st, ok := s.Stall(0, 1, 1); !ok || st.VirtualNs != 500 || st.Wall != 0 {
		t.Errorf("stall = %+v, %v", st, ok)
	}
	if d, ok := s.RMADelay(2, 1, 4); !ok || d != 77 {
		t.Errorf("rma delay = %d, %v", d, ok)
	}
	if dead, ok := s.Fail(0, 0, 3); !ok || dead != 0 {
		t.Errorf("fail = %d, %v (rank 0 must survive the 1-based encoding)", dead, ok)
	}
	if !s.Abort(1, 1, 5) {
		t.Error("abort record missing")
	}
	if m, ok := s.Match(0, 1, 2); !ok || (m != chaos.MsgID{Rank: 0, TID: 0, Seq: 1}) {
		t.Errorf("match = %+v, %v (rank 0/tid 0 sender must survive)", m, ok)
	}
	if m, ok := s.Poll(1, 0, 6); !ok || !m.Zero() {
		t.Errorf("bare poll = %+v, %v", m, ok)
	}
	if m, ok := s.Poll(1, 0, 7); !ok || (m != chaos.MsgID{Rank: 2, TID: 1, Seq: 9}) {
		t.Errorf("identified poll = %+v, %v", m, ok)
	}
	if got := s.Crashes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("crashes = %v", got)
	}

	// Absent points: no fault, no failure, no match.
	if _, ok := s.SendFault(1, 0, 99); ok {
		t.Error("phantom send fault")
	}
	if _, ok := s.Fail(3, 3, 3); ok {
		t.Error("phantom failure")
	}
	if s.Abort(0, 0, 1) {
		t.Error("phantom abort")
	}
}

// TestScheduleBytesCanonical pins that serialization is independent of
// the host interleaving the records arrived in: the same decisions
// added in a different order serialize byte-identically.
func TestScheduleBytesCanonical(t *testing.T) {
	a := fullRecorder()

	b := NewRecorder()
	b.SetPlan(chaos.Plan{Seed: 7, DelayProb: 0.5, MaxDelayNs: 1000, CrashRank: 1, CrashAfterCalls: 3})
	b.RecordCrash(0)
	b.RecordPoll(1, 0, 7, chaos.MsgID{Rank: 2, TID: 1, Seq: 9})
	b.RecordMatch(0, 1, 2, chaos.MsgID{Rank: 0, TID: 0, Seq: 1})
	b.RecordAbort(1, 1, 5)
	b.RecordPoll(1, 0, 6, chaos.MsgID{})
	b.RecordFail(0, 0, 3, 0)
	b.RecordRMADelay(2, 1, 4, 77)
	b.RecordStall(0, 1, 1, chaos.Stall{VirtualNs: 500, Wall: time.Millisecond})
	b.RecordSend(1, 0, 2, chaos.SendFault{DelayNs: 40, Reorder: true, Retries: 2, BackoffNs: 10, JitterWall: 3 * time.Millisecond})

	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("serialization is order-dependent:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

func TestReadTruncatedSalvagesPrefix(t *testing.T) {
	full := fullRecorder().Bytes()
	// Cut mid-way through the final record.
	cut := full[:len(full)-5]
	s, err := Read(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated stream read without error")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TruncatedError", err)
	}
	if s == nil {
		t.Fatal("no salvaged schedule returned")
	}
	if te.Records != s.Len() {
		t.Errorf("TruncatedError.Records = %d, schedule has %d", te.Records, s.Len())
	}
	if s.Len() != 8 { // 9 records, last one cut
		t.Errorf("salvaged %d records, want 8", s.Len())
	}
	// The salvaged prefix still replays: canonical order puts
	// (rank 0, tid 1, seq 1) first.
	if st, ok := s.Stall(0, 1, 1); !ok || st.VirtualNs != 500 {
		t.Errorf("salvaged stall = %+v, %v", st, ok)
	}
}

func TestReadHeaderErrors(t *testing.T) {
	// Empty stream: truncated before the header.
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty stream err = %v, want ErrTruncated", err)
	}
	// Wrong format string.
	if _, err := Read(strings.NewReader(`{"format":"home-trace","version":1}` + "\n")); err == nil || errors.Is(err, ErrTruncated) {
		t.Errorf("foreign format err = %v", err)
	}
	// Newer version than this reader supports.
	if _, err := Read(strings.NewReader(`{"format":"home-sched","version":99}` + "\n")); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("newer version err = %v", err)
	}
	// Garbage header.
	if _, err := Read(strings.NewReader("not json\n")); err == nil || errors.Is(err, ErrTruncated) {
		t.Errorf("garbage header err = %v", err)
	}
}

func TestReadRejectsDuplicateKeys(t *testing.T) {
	r := NewRecorder()
	r.RecordAbort(0, 0, 1)
	r.RecordAbort(0, 0, 1)
	if _, err := Read(bytes.NewReader(r.Bytes())); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate-record rejection", err)
	}
}

// TestRecorderScheduleUsesCodec pins that the in-memory conversion
// goes through the wire format (so every replay exercises the codec).
func TestRecorderScheduleUsesCodec(t *testing.T) {
	rec := fullRecorder()
	s, err := rec.Schedule()
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	viaWire, err := Read(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if s.Len() != viaWire.Len() || len(s.Crashes()) != len(viaWire.Crashes()) {
		t.Errorf("in-memory schedule differs from wire round trip")
	}
}

func TestWriteStreams(t *testing.T) {
	rec := fullRecorder()
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), rec.Bytes()) {
		t.Error("Write and Bytes disagree")
	}
	// First line is the versioned header.
	line, err := bytes.NewBuffer(buf.Bytes()).ReadString('\n')
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !strings.Contains(line, `"format":"home-sched"`) || !strings.Contains(line, `"version":1`) {
		t.Errorf("header line = %s", line)
	}
}
