package sched

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"home/internal/chaos"
)

// fullRecorder builds a recorder exercising every record kind, with
// payload values chosen to stress the 1-based encodings (rank 0, tid 0
// must survive omitempty).
func fullRecorder() *Recorder {
	r := NewRecorder()
	r.SetPlan(chaos.Plan{Seed: 7, DelayProb: 0.5, MaxDelayNs: 1000, CrashRank: 1, CrashAfterCalls: 3})
	r.RecordSend(1, 0, 2, chaos.SendFault{DelayNs: 40, Reorder: true, Retries: 2, BackoffNs: 10, JitterWall: 3 * time.Millisecond})
	r.RecordStall(0, 1, 1, chaos.Stall{VirtualNs: 500, Wall: time.Millisecond})
	r.RecordRMADelay(2, 1, 4, 77)
	r.RecordFail(0, 0, 3, 0) // observes rank 0's failure: Dead1 encoding
	r.RecordAbort(1, 1, 5)
	r.RecordMatch(0, 1, 2, chaos.MsgID{Rank: 0, TID: 0, Seq: 1}) // rank 0, tid 0 sender
	r.RecordPoll(1, 0, 6, chaos.MsgID{})                         // bare completion poll
	r.RecordPoll(1, 0, 7, chaos.MsgID{Rank: 2, TID: 1, Seq: 9})
	r.RecordCrash(0)
	// v2 order families. Comm 0 (the world) must survive the 1-based
	// encoding; NewComm -1 (not a Comm_dup) must stay absent.
	r.RecordCollJoin(0, 0, 8, chaos.CollOrder{Comm: 0, Seq: 1, Ord: 1, NewComm: -1})
	r.RecordCollJoin(2, 0, 8, chaos.CollOrder{Comm: 1, Seq: 3, Ord: 2, NewComm: 2})
	r.RecordLockGrant(1, 1, 9, 1)
	r.RecordSingleWin(0, 1, 4)
	r.RecordChunk(2, 2, 1<<20, 10, 20)
	return r
}

func TestScheduleRoundTrip(t *testing.T) {
	rec := fullRecorder()
	s, err := Read(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := s.Plan(); got.Seed != 7 || got.DelayProb != 0.5 || got.CrashRank != 1 || got.CrashAfterCalls != 3 {
		t.Errorf("plan did not round-trip: %+v", got)
	}
	if s.Len() != rec.Len() {
		t.Errorf("len = %d, recorded %d", s.Len(), rec.Len())
	}

	if f, ok := s.SendFault(1, 0, 2); !ok || f.DelayNs != 40 || !f.Reorder || f.Retries != 2 || f.BackoffNs != 10 {
		t.Errorf("send fault = %+v, %v", f, ok)
	} else if f.JitterWall != 0 {
		// Wall-clock payloads are recorded for diagnosis but never
		// re-applied: replay forces the race the jitter provoked.
		t.Errorf("replayed send re-applies wall jitter: %v", f.JitterWall)
	}
	if st, ok := s.Stall(0, 1, 1); !ok || st.VirtualNs != 500 || st.Wall != 0 {
		t.Errorf("stall = %+v, %v", st, ok)
	}
	if d, ok := s.RMADelay(2, 1, 4); !ok || d != 77 {
		t.Errorf("rma delay = %d, %v", d, ok)
	}
	if dead, ok := s.Fail(0, 0, 3); !ok || dead != 0 {
		t.Errorf("fail = %d, %v (rank 0 must survive the 1-based encoding)", dead, ok)
	}
	if !s.Abort(1, 1, 5) {
		t.Error("abort record missing")
	}
	if m, ok := s.Match(0, 1, 2); !ok || (m != chaos.MsgID{Rank: 0, TID: 0, Seq: 1}) {
		t.Errorf("match = %+v, %v (rank 0/tid 0 sender must survive)", m, ok)
	}
	if m, ok := s.Poll(1, 0, 6); !ok || !m.Zero() {
		t.Errorf("bare poll = %+v, %v", m, ok)
	}
	if m, ok := s.Poll(1, 0, 7); !ok || (m != chaos.MsgID{Rank: 2, TID: 1, Seq: 9}) {
		t.Errorf("identified poll = %+v, %v", m, ok)
	}
	if got := s.Crashes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("crashes = %v", got)
	}

	// v2 order families.
	if !s.PinsOrders() {
		t.Error("v2 schedule does not pin orders")
	}
	if o, ok := s.CollJoin(0, 0, 8); !ok || o.Comm != 0 || o.Seq != 1 || o.Ord != 1 || o.NewComm != -1 {
		t.Errorf("coll join = %+v, %v (comm 0 must survive, NewComm must decode -1)", o, ok)
	}
	if o, ok := s.CollJoin(2, 0, 8); !ok || o.Comm != 1 || o.Seq != 3 || o.Ord != 2 || o.NewComm != 2 {
		t.Errorf("comm-dup join = %+v, %v", o, ok)
	}
	if tk, ok := s.LockGrant(1, 1, 9); !ok || tk != 1 {
		t.Errorf("lock grant = %d, %v", tk, ok)
	}
	if !s.SingleWin(0, 1, 4) {
		t.Error("single win record missing")
	}
	if b, e, ok := s.Chunk(2, 2, 1<<20); !ok || b != 10 || e != 20 {
		t.Errorf("chunk = [%d,%d), %v", b, e, ok)
	}
	if got := s.OrderForced(); got != 5 {
		t.Errorf("OrderForced = %d after 5 order lookups", got)
	}

	// Absent points: no fault, no failure, no match.
	if _, ok := s.SendFault(1, 0, 99); ok {
		t.Error("phantom send fault")
	}
	if _, ok := s.Fail(3, 3, 3); ok {
		t.Error("phantom failure")
	}
	if s.Abort(0, 0, 1) {
		t.Error("phantom abort")
	}
	if s.SingleWin(3, 0, 4) {
		t.Error("phantom single win")
	}
	if _, _, ok := s.Chunk(2, 2, 1<<20|1); ok {
		t.Error("phantom chunk (claim index 1 was never recorded)")
	}
}

// TestScheduleBytesCanonical pins that serialization is independent of
// the host interleaving the records arrived in: the same decisions
// added in a different order serialize byte-identically.
func TestScheduleBytesCanonical(t *testing.T) {
	a := fullRecorder()

	b := NewRecorder()
	b.SetPlan(chaos.Plan{Seed: 7, DelayProb: 0.5, MaxDelayNs: 1000, CrashRank: 1, CrashAfterCalls: 3})
	b.RecordChunk(2, 2, 1<<20, 10, 20)
	b.RecordCrash(0)
	b.RecordLockGrant(1, 1, 9, 1)
	b.RecordPoll(1, 0, 7, chaos.MsgID{Rank: 2, TID: 1, Seq: 9})
	b.RecordMatch(0, 1, 2, chaos.MsgID{Rank: 0, TID: 0, Seq: 1})
	b.RecordCollJoin(2, 0, 8, chaos.CollOrder{Comm: 1, Seq: 3, Ord: 2, NewComm: 2})
	b.RecordAbort(1, 1, 5)
	b.RecordPoll(1, 0, 6, chaos.MsgID{})
	b.RecordSingleWin(0, 1, 4)
	b.RecordFail(0, 0, 3, 0)
	b.RecordRMADelay(2, 1, 4, 77)
	b.RecordCollJoin(0, 0, 8, chaos.CollOrder{Comm: 0, Seq: 1, Ord: 1, NewComm: -1})
	b.RecordStall(0, 1, 1, chaos.Stall{VirtualNs: 500, Wall: time.Millisecond})
	b.RecordSend(1, 0, 2, chaos.SendFault{DelayNs: 40, Reorder: true, Retries: 2, BackoffNs: 10, JitterWall: 3 * time.Millisecond})

	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("serialization is order-dependent:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

func TestReadTruncatedSalvagesPrefix(t *testing.T) {
	full := fullRecorder().Bytes()
	// Cut mid-way through the final record.
	cut := full[:len(full)-5]
	s, err := Read(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated stream read without error")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TruncatedError", err)
	}
	if s == nil {
		t.Fatal("no salvaged schedule returned")
	}
	if te.Records != s.Len() {
		t.Errorf("TruncatedError.Records = %d, schedule has %d", te.Records, s.Len())
	}
	if s.Len() != 13 { // 14 records, the trailing chunk record cut
		t.Errorf("salvaged %d records, want 13", s.Len())
	}
	// The salvaged prefix still replays: canonical order puts
	// (rank 0, tid 1, seq 1) first.
	if st, ok := s.Stall(0, 1, 1); !ok || st.VirtualNs != 500 {
		t.Errorf("salvaged stall = %+v, %v", st, ok)
	}
	// Order records inside the salvaged prefix still force, and the
	// salvaged stream still reports the v2 guarantee.
	if !s.PinsOrders() {
		t.Error("salvaged v2 prefix does not pin orders")
	}
	if o, ok := s.CollJoin(0, 0, 8); !ok || o.Ord != 1 {
		t.Errorf("salvaged coll join = %+v, %v", o, ok)
	}
	if tk, ok := s.LockGrant(1, 1, 9); !ok || tk != 1 {
		t.Errorf("salvaged lock grant = %d, %v", tk, ok)
	}
	// The cut record is absent — meaningful absence, not an error.
	if _, _, ok := s.Chunk(2, 2, 1<<20); ok {
		t.Error("cut chunk record resurfaced")
	}
}

func TestReadHeaderErrors(t *testing.T) {
	// Empty stream: cut before the header is complete. No plan means
	// no salvageable prefix, so this is hard, not ErrTruncated — the
	// salvage contract guarantees TruncatedError carries a schedule.
	if _, err := Read(bytes.NewReader(nil)); err == nil || errors.Is(err, ErrTruncated) {
		t.Errorf("empty stream err = %v, want hard header error", err)
	}
	// Wrong format string.
	if _, err := Read(strings.NewReader(`{"format":"home-trace","version":1}` + "\n")); err == nil || errors.Is(err, ErrTruncated) {
		t.Errorf("foreign format err = %v", err)
	}
	// Newer version than this reader supports.
	if _, err := Read(strings.NewReader(`{"format":"home-sched","version":99}` + "\n")); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("newer version err = %v", err)
	}
	// Garbage header.
	if _, err := Read(strings.NewReader("not json\n")); err == nil || errors.Is(err, ErrTruncated) {
		t.Errorf("garbage header err = %v", err)
	}
}

func TestReadRejectsDuplicateKeys(t *testing.T) {
	// The recorder collapses identical duplicates (echo mode books a
	// forced decision twice), so build the corrupt stream directly.
	data := EncodeRecords(chaos.Plan{Seed: 1}, []Record{
		{Kind: KindAbort, Rank: 0, TID: 0, Seq: 1},
		{Kind: KindAbort, Rank: 0, TID: 0, Seq: 1},
	})
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate-record rejection", err)
	}
}

// TestRecorderScheduleUsesCodec pins that the in-memory conversion
// goes through the wire format (so every replay exercises the codec).
func TestRecorderScheduleUsesCodec(t *testing.T) {
	rec := fullRecorder()
	s, err := rec.Schedule()
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	viaWire, err := Read(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if s.Len() != viaWire.Len() || len(s.Crashes()) != len(viaWire.Crashes()) {
		t.Errorf("in-memory schedule differs from wire round trip")
	}
}

func TestWriteStreams(t *testing.T) {
	rec := fullRecorder()
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), rec.Bytes()) {
		t.Error("Write and Bytes disagree")
	}
	// First line is the versioned header.
	line, err := bytes.NewBuffer(buf.Bytes()).ReadString('\n')
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !strings.Contains(line, `"format":"home-sched"`) || !strings.Contains(line, `"version":2`) {
		t.Errorf("header line = %s", line)
	}
}

// TestV1StreamStillReplays pins backward compatibility: a v2 reader
// accepts a v1 stream without error, replays its decisions, and
// reports the v1 guarantee (orders not pinned) so the substrates use
// the legacy resolution paths.
func TestV1StreamStillReplays(t *testing.T) {
	v1 := `{"format":"home-sched","version":1,"plan":{"Seed":7,"DelayProb":0,"MaxDelayNs":0,"ReorderProb":0,"SendFailProb":0,"MaxRetries":0,"RetryBackoffNs":0,"JitterProb":0,"JitterWall":0,"CrashRank":1,"CrashAfterCalls":3,"StallProb":0,"StallNs":0,"StallWall":0,"RMAProb":0,"MaxRMADelayNs":0}}
{"k":"crash","r":1}
{"k":"fail","r":0,"t":0,"q":3,"dead":2}
{"k":"match","r":0,"t":1,"q":2,"src":1,"stid":1,"sseq":1}
{"k":"abort","r":1,"t":1,"q":5}
`
	s, err := Read(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if s.Version() != 1 {
		t.Errorf("Version = %d, want 1", s.Version())
	}
	if s.PinsOrders() {
		t.Error("v1 stream claims to pin orders")
	}
	if dead, ok := s.Fail(0, 0, 3); !ok || dead != 1 {
		t.Errorf("v1 fail = %d, %v", dead, ok)
	}
	if m, ok := s.Match(0, 1, 2); !ok || (m != chaos.MsgID{Rank: 0, TID: 0, Seq: 1}) {
		t.Errorf("v1 match = %+v, %v", m, ok)
	}
	if !s.Abort(1, 1, 5) {
		t.Error("v1 abort record missing")
	}
	if got := s.Crashes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("v1 crashes = %v", got)
	}
	// Order lookups on a v1 stream are always absent.
	if _, ok := s.CollJoin(0, 0, 3); ok {
		t.Error("phantom coll join on v1 stream")
	}
	if got := s.OrderForced(); got != 0 {
		t.Errorf("OrderForced = %d on a v1 stream", got)
	}
}

// TestRecorderOrderLen pins the order-record counter used by the
// sched.order_records stat.
func TestRecorderOrderLen(t *testing.T) {
	rec := fullRecorder()
	if got := rec.OrderLen(); got != 5 {
		t.Errorf("OrderLen = %d, want 5 (2 coll + lock + single + chunk)", got)
	}
	if got := NewRecorder().OrderLen(); got != 0 {
		t.Errorf("empty OrderLen = %d", got)
	}
}
