// Package sched records and replays realized fault schedules. A chaos
// plan (internal/chaos) makes fault *decisions* reproducible from a
// seed, but crash-stop runs still contain genuine host-schedule races:
// which thread of the crashed rank trips the shared call counter,
// whether a survivor's receive matched before the failure propagated,
// which message a wildcard receive claimed. sched captures every such
// realized decision and nondeterministic resolution during a run — as
// a compact, versioned JSONL stream keyed by (rank, tid, seq) — and
// replays it so the identical interleaving, and therefore the
// identical home.Report, is forced on re-execution (the seed-hash
// fault path is disabled during replay).
//
// Record kinds:
//
//	send   realized send fault (delay/reorder/retries/jitter), keyed
//	       by the sender thread's chaos decision index
//	stall  realized thread stall, keyed by the chaos decision index
//	rma    realized RMA delay, keyed by the chaos decision index
//	fail   an MPI operation observed a rank failure at this schedule
//	       point (sim.Ctx.NextSchedSeq)
//	abort  an OpenMP construct was abandoned by a crash-stop
//	match  the receive/probe posted at this point was satisfied by the
//	       identified message
//	poll   a non-blocking poll (MPI_Test, MPI_Iprobe) succeeded here
//	crash  the given rank crash-stopped (no point key)
//
// Format v2 adds the *order* families, which pin virtual time (see
// docs/ROBUSTNESS.md):
//
//	coll   the arrival at this schedule point joined the identified
//	       collective instance (communicator, instance seq, arrival
//	       index; Comm_dup instances also carry the allocated
//	       communicator id). Recorded only for instances that
//	       *completed* — an abandoned instance leaves no coll records,
//	       so a replayed crash can never re-join it
//	lock   the OpenMP lock acquire at this point was granted as the
//	       lock's ticket-th acquisition
//	single the thread won the `single` first-arriver election at this
//	       construct ordinal (keyed by ordinal, not schedule point)
//	chunk  the thread claimed iteration range [base, end) from a
//	       dynamic/guided loop (keyed by ordinal and claim index)
//
// Absence is meaningful: a point with no record realized no fault,
// observed no failure, and matched no message. Wall-clock payloads
// (jitter, stall pauses) are recorded but not re-applied on replay —
// they exist only to provoke host races, which replay forces instead.
package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"home/internal/chaos"
)

// Record kinds (the "k" field of the wire format).
const (
	KindSend  = "send"
	KindStall = "stall"
	KindRMA   = "rma"
	KindFail  = "fail"
	KindAbort = "abort"
	KindMatch = "match"
	KindPoll  = "poll"
	KindCrash = "crash"

	// Order families (format v2): collective membership, lock grants,
	// single elections and worksharing chunk claims.
	KindColl   = "coll"
	KindLock   = "lock"
	KindSingle = "single"
	KindChunk  = "chunk"
)

// orderKind reports whether the kind belongs to the v2 order families
// that pin virtual time.
func orderKind(kind string) bool {
	switch kind {
	case KindColl, KindLock, KindSingle, KindChunk:
		return true
	}
	return false
}

// Record is one realized decision. Key fields are always present;
// payload fields are per-kind. Rank-valued payload fields (Dead1,
// Src1, STID1) are stored 1-based so the zero value can mean "absent"
// under omitempty — use the accessor methods, not the raw fields.
type Record struct {
	Kind string `json:"k"`
	Rank int    `json:"r"`
	TID  int    `json:"t"`
	Seq  uint64 `json:"q,omitempty"` // crash records carry no point

	// send / rma payload (rma uses DelayNs only)
	DelayNs   int64 `json:"delay,omitempty"`
	Reorder   bool  `json:"reorder,omitempty"`
	Retries   int   `json:"retries,omitempty"`
	BackoffNs int64 `json:"backoff,omitempty"`
	JitterNs  int64 `json:"jitter,omitempty"`

	// stall payload
	StallNs     int64 `json:"stall,omitempty"`
	StallWallNs int64 `json:"stallw,omitempty"`

	// fail payload: 1-based rank whose failure was observed
	Dead1 int `json:"dead,omitempty"`

	// match / poll payload: 1-based sender rank and tid plus the
	// sender's schedule stamp (stamps are >= 1, so SrcSeq == 0 means
	// "no message identity" — a bare completion poll)
	Src1   int    `json:"src,omitempty"`
	STID1  int    `json:"stid,omitempty"`
	SrcSeq uint64 `json:"sseq,omitempty"`

	// coll payload: 1-based communicator id, instance seq within the
	// communicator (>= 1), 1-based arrival index, and the 1-based
	// duplicated communicator id a completed Comm_dup allocated (0 =
	// not a Comm_dup)
	Comm1    int   `json:"comm,omitempty"`
	CollSeq  int64 `json:"cseq,omitempty"`
	Ord      int   `json:"ord,omitempty"`
	NewComm1 int   `json:"ncomm,omitempty"`

	// lock payload: 1-based per-lock grant ticket
	Ticket uint64 `json:"ticket,omitempty"`

	// chunk payload: claimed iteration range [base, end); plain values
	// (omitempty only elides literal zeros, which decode back to zero)
	Base int64 `json:"base,omitempty"`
	End  int64 `json:"end,omitempty"`
}

// DeadRank returns the observed failed rank of a fail record.
func (r Record) DeadRank() int { return r.Dead1 - 1 }

// Msg returns the message identity of a match/poll record (zero MsgID
// when the record carries none).
func (r Record) Msg() chaos.MsgID {
	if r.SrcSeq == 0 {
		return chaos.MsgID{}
	}
	return chaos.MsgID{Rank: r.Src1 - 1, TID: r.STID1 - 1, Seq: r.SrcSeq}
}

// CollOrder returns the instance assignment of a coll record.
func (r Record) CollOrder() chaos.CollOrder {
	return chaos.CollOrder{Comm: r.Comm1 - 1, Seq: r.CollSeq, Ord: r.Ord, NewComm: r.NewComm1 - 1}
}

type key struct {
	kind string
	rank int
	tid  int
	seq  uint64
}

// Recorder accumulates the realized schedule of one run. It
// implements chaos.Recorder and is safe for concurrent use (match
// resolutions arrive from sender goroutines).
type Recorder struct {
	mu   sync.Mutex
	plan chaos.Plan
	recs []Record
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetPlan stores the chaos plan embedded in the schedule header so a
// replay run can reconstruct the exact same injector configuration.
func (r *Recorder) SetPlan(p chaos.Plan) {
	r.mu.Lock()
	r.plan = p
	r.mu.Unlock()
}

// Len returns the number of records accumulated so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

func (r *Recorder) add(rec Record) {
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// RecordSend implements chaos.Recorder.
func (r *Recorder) RecordSend(rank, tid int, seq uint64, f chaos.SendFault) {
	r.add(Record{
		Kind: KindSend, Rank: rank, TID: tid, Seq: seq,
		DelayNs: f.DelayNs, Reorder: f.Reorder,
		Retries: f.Retries, BackoffNs: f.BackoffNs,
		JitterNs: int64(f.JitterWall),
	})
}

// RecordStall implements chaos.Recorder.
func (r *Recorder) RecordStall(rank, tid int, seq uint64, s chaos.Stall) {
	r.add(Record{
		Kind: KindStall, Rank: rank, TID: tid, Seq: seq,
		StallNs: s.VirtualNs, StallWallNs: int64(s.Wall),
	})
}

// RecordRMADelay implements chaos.Recorder.
func (r *Recorder) RecordRMADelay(rank, tid int, seq uint64, delayNs int64) {
	r.add(Record{Kind: KindRMA, Rank: rank, TID: tid, Seq: seq, DelayNs: delayNs})
}

// RecordFail implements chaos.Recorder.
func (r *Recorder) RecordFail(rank, tid int, seq uint64, dead int) {
	r.add(Record{Kind: KindFail, Rank: rank, TID: tid, Seq: seq, Dead1: dead + 1})
}

// RecordAbort implements chaos.Recorder.
func (r *Recorder) RecordAbort(rank, tid int, seq uint64) {
	r.add(Record{Kind: KindAbort, Rank: rank, TID: tid, Seq: seq})
}

// RecordMatch implements chaos.Recorder.
func (r *Recorder) RecordMatch(rank, tid int, seq uint64, m chaos.MsgID) {
	r.add(Record{
		Kind: KindMatch, Rank: rank, TID: tid, Seq: seq,
		Src1: m.Rank + 1, STID1: m.TID + 1, SrcSeq: m.Seq,
	})
}

// RecordPoll implements chaos.Recorder.
func (r *Recorder) RecordPoll(rank, tid int, seq uint64, m chaos.MsgID) {
	rec := Record{Kind: KindPoll, Rank: rank, TID: tid, Seq: seq}
	if !m.Zero() {
		rec.Src1, rec.STID1, rec.SrcSeq = m.Rank+1, m.TID+1, m.Seq
	}
	r.add(rec)
}

// RecordCrash implements chaos.Recorder.
func (r *Recorder) RecordCrash(rank int) {
	r.add(Record{Kind: KindCrash, Rank: rank})
}

// RecordCollJoin implements chaos.Recorder.
func (r *Recorder) RecordCollJoin(rank, tid int, seq uint64, o chaos.CollOrder) {
	r.add(Record{
		Kind: KindColl, Rank: rank, TID: tid, Seq: seq,
		Comm1: o.Comm + 1, CollSeq: o.Seq, Ord: o.Ord, NewComm1: o.NewComm + 1,
	})
}

// RecordLockGrant implements chaos.Recorder.
func (r *Recorder) RecordLockGrant(rank, tid int, seq uint64, ticket uint64) {
	r.add(Record{Kind: KindLock, Rank: rank, TID: tid, Seq: seq, Ticket: ticket})
}

// RecordSingleWin implements chaos.Recorder.
func (r *Recorder) RecordSingleWin(rank, tid int, ord uint64) {
	r.add(Record{Kind: KindSingle, Rank: rank, TID: tid, Seq: ord})
}

// RecordChunk implements chaos.Recorder.
func (r *Recorder) RecordChunk(rank, tid int, seq uint64, base, end int64) {
	r.add(Record{Kind: KindChunk, Rank: rank, TID: tid, Seq: seq, Base: base, End: end})
}

// OrderLen returns how many of the accumulated records belong to the
// v2 order families (collective membership, lock grants, elections,
// chunk claims) — the decisions that pin virtual time.
func (r *Recorder) OrderLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rec := range r.recs {
		if orderKind(rec.Kind) {
			n++
		}
	}
	return n
}

// snapshot returns the plan and a sorted copy of the records. Sorting
// by (rank, tid, seq, kind) makes the serialized schedule a canonical,
// byte-stable artifact regardless of host interleaving during the
// recorded run. Exact duplicates collapse to one record: in echo mode
// (replay + re-record) a forced decision can be booked twice — once by
// the echo source, once by a runtime path that observes even on a
// replay hit — with identical content. Duplicate keys with *different*
// content are kept, so schedule construction still rejects them.
func (r *Recorder) snapshot() (chaos.Plan, []Record) {
	r.mu.Lock()
	recs := make([]Record, len(r.recs))
	copy(recs, r.recs)
	plan := r.plan
	r.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Kind < b.Kind
	})
	uniq := recs[:0]
	for i, rec := range recs {
		if i > 0 && rec == uniq[len(uniq)-1] {
			continue
		}
		uniq = append(uniq, rec)
	}
	return plan, uniq
}

// Schedule is a recorded schedule loaded for replay. It implements
// chaos.Source; lookups are read-only after construction and safe for
// concurrent use (the forced-hit counter is atomic).
type Schedule struct {
	plan        chaos.Plan
	byKey       map[key]Record
	recs        []Record
	crashes     []int
	n           int
	version     int
	forced      atomic.Int64
	orderForced atomic.Int64
}

func newSchedule(plan chaos.Plan, version int, recs []Record) (*Schedule, error) {
	s := &Schedule{plan: plan, version: version, byKey: make(map[key]Record, len(recs)), n: len(recs), recs: recs}
	for _, rec := range recs {
		if rec.Kind == KindCrash {
			s.crashes = append(s.crashes, rec.Rank)
			continue
		}
		k := key{rec.Kind, rec.Rank, rec.TID, rec.Seq}
		if _, dup := s.byKey[k]; dup {
			return nil, fmt.Errorf("sched: duplicate record for %s@(%d,%d,%d)", rec.Kind, rec.Rank, rec.TID, rec.Seq)
		}
		s.byKey[k] = rec
	}
	return s, nil
}

// Plan returns a copy of the chaos plan the schedule was recorded
// under; attach it (by pointer) to the replay run's configuration.
func (s *Schedule) Plan() chaos.Plan { return s.plan }

// Len returns the number of records in the schedule.
func (s *Schedule) Len() int { return s.n }

// Crashes returns the ranks that crash-stopped in the recorded run.
func (s *Schedule) Crashes() []int { return append([]int(nil), s.crashes...) }

// Forced returns how many lookups have hit a record so far — the
// number of recorded decisions replay has forced onto the run.
// Schedules are reusable across runs, so per-run accounting should
// difference Forced() around the run.
func (s *Schedule) Forced() int64 { return s.forced.Load() }

// OrderForced returns how many of the forced decisions belonged to the
// v2 order families (subset of Forced; same reuse caveat).
func (s *Schedule) OrderForced() int64 { return s.orderForced.Load() }

// Version returns the wire-format version the schedule was decoded
// from (1 for streams recorded before the order families existed).
func (s *Schedule) Version() int { return s.version }

// PinsOrders implements chaos.Source: only v2+ streams carry the
// membership/acquisition order records that make virtual time replay
// exactly; older streams replay with the report-identity guarantee.
func (s *Schedule) PinsOrders() bool { return s.version >= 2 }

func (s *Schedule) lookup(kind string, rank, tid int, seq uint64) (Record, bool) {
	rec, ok := s.byKey[key{kind, rank, tid, seq}]
	if ok {
		s.forced.Add(1)
		if orderKind(kind) {
			s.orderForced.Add(1)
		}
	}
	return rec, ok
}

// SendFault implements chaos.Source.
func (s *Schedule) SendFault(rank, tid int, seq uint64) (chaos.SendFault, bool) {
	rec, ok := s.lookup(KindSend, rank, tid, seq)
	if !ok {
		return chaos.SendFault{}, false
	}
	return chaos.SendFault{
		DelayNs: rec.DelayNs, Reorder: rec.Reorder,
		Retries: rec.Retries, BackoffNs: rec.BackoffNs,
	}, true
}

// Stall implements chaos.Source.
func (s *Schedule) Stall(rank, tid int, seq uint64) (chaos.Stall, bool) {
	rec, ok := s.lookup(KindStall, rank, tid, seq)
	if !ok {
		return chaos.Stall{}, false
	}
	return chaos.Stall{VirtualNs: rec.StallNs}, true
}

// RMADelay implements chaos.Source.
func (s *Schedule) RMADelay(rank, tid int, seq uint64) (int64, bool) {
	rec, ok := s.lookup(KindRMA, rank, tid, seq)
	if !ok {
		return 0, false
	}
	return rec.DelayNs, true
}

// Fail implements chaos.Source.
func (s *Schedule) Fail(rank, tid int, seq uint64) (int, bool) {
	rec, ok := s.lookup(KindFail, rank, tid, seq)
	if !ok {
		return 0, false
	}
	return rec.DeadRank(), true
}

// Abort implements chaos.Source.
func (s *Schedule) Abort(rank, tid int, seq uint64) bool {
	_, ok := s.lookup(KindAbort, rank, tid, seq)
	return ok
}

// Match implements chaos.Source.
func (s *Schedule) Match(rank, tid int, seq uint64) (chaos.MsgID, bool) {
	rec, ok := s.lookup(KindMatch, rank, tid, seq)
	if !ok {
		return chaos.MsgID{}, false
	}
	return rec.Msg(), true
}

// Poll implements chaos.Source.
func (s *Schedule) Poll(rank, tid int, seq uint64) (chaos.MsgID, bool) {
	rec, ok := s.lookup(KindPoll, rank, tid, seq)
	if !ok {
		return chaos.MsgID{}, false
	}
	return rec.Msg(), true
}

// CollJoin implements chaos.Source.
func (s *Schedule) CollJoin(rank, tid int, seq uint64) (chaos.CollOrder, bool) {
	rec, ok := s.lookup(KindColl, rank, tid, seq)
	if !ok {
		return chaos.CollOrder{}, false
	}
	return rec.CollOrder(), true
}

// LockGrant implements chaos.Source.
func (s *Schedule) LockGrant(rank, tid int, seq uint64) (uint64, bool) {
	rec, ok := s.lookup(KindLock, rank, tid, seq)
	if !ok {
		return 0, false
	}
	return rec.Ticket, true
}

// SingleWin implements chaos.Source.
func (s *Schedule) SingleWin(rank, tid int, ord uint64) bool {
	_, ok := s.lookup(KindSingle, rank, tid, ord)
	return ok
}

// Chunk implements chaos.Source.
func (s *Schedule) Chunk(rank, tid int, seq uint64) (base, end int64, ok bool) {
	rec, found := s.lookup(KindChunk, rank, tid, seq)
	if !found {
		return 0, 0, false
	}
	return rec.Base, rec.End, true
}
