// Package sched records and replays realized fault schedules. A chaos
// plan (internal/chaos) makes fault *decisions* reproducible from a
// seed, but crash-stop runs still contain genuine host-schedule races:
// which thread of the crashed rank trips the shared call counter,
// whether a survivor's receive matched before the failure propagated,
// which message a wildcard receive claimed. sched captures every such
// realized decision and nondeterministic resolution during a run — as
// a compact, versioned JSONL stream keyed by (rank, tid, seq) — and
// replays it so the identical interleaving, and therefore the
// identical home.Report, is forced on re-execution (the seed-hash
// fault path is disabled during replay).
//
// Record kinds:
//
//	send   realized send fault (delay/reorder/retries/jitter), keyed
//	       by the sender thread's chaos decision index
//	stall  realized thread stall, keyed by the chaos decision index
//	rma    realized RMA delay, keyed by the chaos decision index
//	fail   an MPI operation observed a rank failure at this schedule
//	       point (sim.Ctx.NextSchedSeq)
//	abort  an OpenMP construct was abandoned by a crash-stop
//	match  the receive/probe posted at this point was satisfied by the
//	       identified message
//	poll   a non-blocking poll (MPI_Test, MPI_Iprobe) succeeded here
//	crash  the given rank crash-stopped (no point key)
//
// Absence is meaningful: a point with no record realized no fault,
// observed no failure, and matched no message. Wall-clock payloads
// (jitter, stall pauses) are recorded but not re-applied on replay —
// they exist only to provoke host races, which replay forces instead.
package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"home/internal/chaos"
)

// Record kinds (the "k" field of the wire format).
const (
	KindSend  = "send"
	KindStall = "stall"
	KindRMA   = "rma"
	KindFail  = "fail"
	KindAbort = "abort"
	KindMatch = "match"
	KindPoll  = "poll"
	KindCrash = "crash"
)

// Record is one realized decision. Key fields are always present;
// payload fields are per-kind. Rank-valued payload fields (Dead1,
// Src1, STID1) are stored 1-based so the zero value can mean "absent"
// under omitempty — use the accessor methods, not the raw fields.
type Record struct {
	Kind string `json:"k"`
	Rank int    `json:"r"`
	TID  int    `json:"t"`
	Seq  uint64 `json:"q,omitempty"` // crash records carry no point

	// send / rma payload (rma uses DelayNs only)
	DelayNs   int64 `json:"delay,omitempty"`
	Reorder   bool  `json:"reorder,omitempty"`
	Retries   int   `json:"retries,omitempty"`
	BackoffNs int64 `json:"backoff,omitempty"`
	JitterNs  int64 `json:"jitter,omitempty"`

	// stall payload
	StallNs     int64 `json:"stall,omitempty"`
	StallWallNs int64 `json:"stallw,omitempty"`

	// fail payload: 1-based rank whose failure was observed
	Dead1 int `json:"dead,omitempty"`

	// match / poll payload: 1-based sender rank and tid plus the
	// sender's schedule stamp (stamps are >= 1, so SrcSeq == 0 means
	// "no message identity" — a bare completion poll)
	Src1   int    `json:"src,omitempty"`
	STID1  int    `json:"stid,omitempty"`
	SrcSeq uint64 `json:"sseq,omitempty"`
}

// DeadRank returns the observed failed rank of a fail record.
func (r Record) DeadRank() int { return r.Dead1 - 1 }

// Msg returns the message identity of a match/poll record (zero MsgID
// when the record carries none).
func (r Record) Msg() chaos.MsgID {
	if r.SrcSeq == 0 {
		return chaos.MsgID{}
	}
	return chaos.MsgID{Rank: r.Src1 - 1, TID: r.STID1 - 1, Seq: r.SrcSeq}
}

type key struct {
	kind string
	rank int
	tid  int
	seq  uint64
}

// Recorder accumulates the realized schedule of one run. It
// implements chaos.Recorder and is safe for concurrent use (match
// resolutions arrive from sender goroutines).
type Recorder struct {
	mu   sync.Mutex
	plan chaos.Plan
	recs []Record
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetPlan stores the chaos plan embedded in the schedule header so a
// replay run can reconstruct the exact same injector configuration.
func (r *Recorder) SetPlan(p chaos.Plan) {
	r.mu.Lock()
	r.plan = p
	r.mu.Unlock()
}

// Len returns the number of records accumulated so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

func (r *Recorder) add(rec Record) {
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// RecordSend implements chaos.Recorder.
func (r *Recorder) RecordSend(rank, tid int, seq uint64, f chaos.SendFault) {
	r.add(Record{
		Kind: KindSend, Rank: rank, TID: tid, Seq: seq,
		DelayNs: f.DelayNs, Reorder: f.Reorder,
		Retries: f.Retries, BackoffNs: f.BackoffNs,
		JitterNs: int64(f.JitterWall),
	})
}

// RecordStall implements chaos.Recorder.
func (r *Recorder) RecordStall(rank, tid int, seq uint64, s chaos.Stall) {
	r.add(Record{
		Kind: KindStall, Rank: rank, TID: tid, Seq: seq,
		StallNs: s.VirtualNs, StallWallNs: int64(s.Wall),
	})
}

// RecordRMADelay implements chaos.Recorder.
func (r *Recorder) RecordRMADelay(rank, tid int, seq uint64, delayNs int64) {
	r.add(Record{Kind: KindRMA, Rank: rank, TID: tid, Seq: seq, DelayNs: delayNs})
}

// RecordFail implements chaos.Recorder.
func (r *Recorder) RecordFail(rank, tid int, seq uint64, dead int) {
	r.add(Record{Kind: KindFail, Rank: rank, TID: tid, Seq: seq, Dead1: dead + 1})
}

// RecordAbort implements chaos.Recorder.
func (r *Recorder) RecordAbort(rank, tid int, seq uint64) {
	r.add(Record{Kind: KindAbort, Rank: rank, TID: tid, Seq: seq})
}

// RecordMatch implements chaos.Recorder.
func (r *Recorder) RecordMatch(rank, tid int, seq uint64, m chaos.MsgID) {
	r.add(Record{
		Kind: KindMatch, Rank: rank, TID: tid, Seq: seq,
		Src1: m.Rank + 1, STID1: m.TID + 1, SrcSeq: m.Seq,
	})
}

// RecordPoll implements chaos.Recorder.
func (r *Recorder) RecordPoll(rank, tid int, seq uint64, m chaos.MsgID) {
	rec := Record{Kind: KindPoll, Rank: rank, TID: tid, Seq: seq}
	if !m.Zero() {
		rec.Src1, rec.STID1, rec.SrcSeq = m.Rank+1, m.TID+1, m.Seq
	}
	r.add(rec)
}

// RecordCrash implements chaos.Recorder.
func (r *Recorder) RecordCrash(rank int) {
	r.add(Record{Kind: KindCrash, Rank: rank})
}

// snapshot returns the plan and a sorted copy of the records. Sorting
// by (rank, tid, seq, kind) makes the serialized schedule a canonical,
// byte-stable artifact regardless of host interleaving during the
// recorded run.
func (r *Recorder) snapshot() (chaos.Plan, []Record) {
	r.mu.Lock()
	recs := make([]Record, len(r.recs))
	copy(recs, r.recs)
	plan := r.plan
	r.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Kind < b.Kind
	})
	return plan, recs
}

// Schedule is a recorded schedule loaded for replay. It implements
// chaos.Source; lookups are read-only after construction and safe for
// concurrent use (the forced-hit counter is atomic).
type Schedule struct {
	plan    chaos.Plan
	byKey   map[key]Record
	crashes []int
	n       int
	forced  atomic.Int64
}

func newSchedule(plan chaos.Plan, recs []Record) (*Schedule, error) {
	s := &Schedule{plan: plan, byKey: make(map[key]Record, len(recs)), n: len(recs)}
	for _, rec := range recs {
		if rec.Kind == KindCrash {
			s.crashes = append(s.crashes, rec.Rank)
			continue
		}
		k := key{rec.Kind, rec.Rank, rec.TID, rec.Seq}
		if _, dup := s.byKey[k]; dup {
			return nil, fmt.Errorf("sched: duplicate record for %s@(%d,%d,%d)", rec.Kind, rec.Rank, rec.TID, rec.Seq)
		}
		s.byKey[k] = rec
	}
	return s, nil
}

// Plan returns a copy of the chaos plan the schedule was recorded
// under; attach it (by pointer) to the replay run's configuration.
func (s *Schedule) Plan() chaos.Plan { return s.plan }

// Len returns the number of records in the schedule.
func (s *Schedule) Len() int { return s.n }

// Crashes returns the ranks that crash-stopped in the recorded run.
func (s *Schedule) Crashes() []int { return append([]int(nil), s.crashes...) }

// Forced returns how many lookups have hit a record so far — the
// number of recorded decisions replay has forced onto the run.
// Schedules are reusable across runs, so per-run accounting should
// difference Forced() around the run.
func (s *Schedule) Forced() int64 { return s.forced.Load() }

func (s *Schedule) lookup(kind string, rank, tid int, seq uint64) (Record, bool) {
	rec, ok := s.byKey[key{kind, rank, tid, seq}]
	if ok {
		s.forced.Add(1)
	}
	return rec, ok
}

// SendFault implements chaos.Source.
func (s *Schedule) SendFault(rank, tid int, seq uint64) (chaos.SendFault, bool) {
	rec, ok := s.lookup(KindSend, rank, tid, seq)
	if !ok {
		return chaos.SendFault{}, false
	}
	return chaos.SendFault{
		DelayNs: rec.DelayNs, Reorder: rec.Reorder,
		Retries: rec.Retries, BackoffNs: rec.BackoffNs,
	}, true
}

// Stall implements chaos.Source.
func (s *Schedule) Stall(rank, tid int, seq uint64) (chaos.Stall, bool) {
	rec, ok := s.lookup(KindStall, rank, tid, seq)
	if !ok {
		return chaos.Stall{}, false
	}
	return chaos.Stall{VirtualNs: rec.StallNs}, true
}

// RMADelay implements chaos.Source.
func (s *Schedule) RMADelay(rank, tid int, seq uint64) (int64, bool) {
	rec, ok := s.lookup(KindRMA, rank, tid, seq)
	if !ok {
		return 0, false
	}
	return rec.DelayNs, true
}

// Fail implements chaos.Source.
func (s *Schedule) Fail(rank, tid int, seq uint64) (int, bool) {
	rec, ok := s.lookup(KindFail, rank, tid, seq)
	if !ok {
		return 0, false
	}
	return rec.DeadRank(), true
}

// Abort implements chaos.Source.
func (s *Schedule) Abort(rank, tid int, seq uint64) bool {
	_, ok := s.lookup(KindAbort, rank, tid, seq)
	return ok
}

// Match implements chaos.Source.
func (s *Schedule) Match(rank, tid int, seq uint64) (chaos.MsgID, bool) {
	rec, ok := s.lookup(KindMatch, rank, tid, seq)
	if !ok {
		return chaos.MsgID{}, false
	}
	return rec.Msg(), true
}

// Poll implements chaos.Source.
func (s *Schedule) Poll(rank, tid int, seq uint64) (chaos.MsgID, bool) {
	rec, ok := s.lookup(KindPoll, rank, tid, seq)
	if !ok {
		return chaos.MsgID{}, false
	}
	return rec.Msg(), true
}
