package sched

import (
	"bytes"
	"testing"

	"home/internal/chaos"
)

// mutableRecorder builds a recorder with at least two mutation targets
// in every operator family: two same-rank wildcard matches, two lock
// grants, a single election with a free other thread, two arrivals of
// one collective instance, fail records at seq >= 2, sends both clean
// and faulty, and a crashed rank with its failure observations.
func mutableRecorder() *Recorder {
	r := NewRecorder()
	r.SetPlan(chaos.Plan{Seed: 11, CrashRank: 1, CrashAfterCalls: 2})
	r.RecordMatch(0, 0, 2, chaos.MsgID{Rank: 2, TID: 0, Seq: 1})
	r.RecordMatch(0, 0, 5, chaos.MsgID{Rank: 3, TID: 1, Seq: 4})
	r.RecordLockGrant(0, 0, 7, 1)
	r.RecordLockGrant(0, 1, 3, 2)
	r.RecordSingleWin(2, 0, 1)
	r.RecordCollJoin(0, 0, 9, chaos.CollOrder{Comm: 0, Seq: 1, Ord: 1, NewComm: -1})
	r.RecordCollJoin(2, 1, 6, chaos.CollOrder{Comm: 0, Seq: 1, Ord: 2, NewComm: -1})
	r.RecordSend(3, 0, 1, chaos.SendFault{})
	r.RecordSend(3, 1, 2, chaos.SendFault{Retries: 1, BackoffNs: 500})
	r.RecordCrash(1)
	r.RecordFail(1, 0, 4, 1) // the crashed rank observes itself
	r.RecordFail(0, 1, 6, 1)
	r.RecordAbort(1, 0, 5)
	return r
}

// oneOfEach returns one valid mutation per operator against the
// mutableRecorder record list.
func oneOfEach() []Mutation {
	return []Mutation{
		{Op: OpFlipMatch, A: Key{KindMatch, 0, 0, 2}, B: Key{KindMatch, 0, 0, 5}},
		{Op: OpSwapLocks, A: Key{KindLock, 0, 0, 7}, B: Key{KindLock, 0, 1, 3}},
		{Op: OpReassignSingle, A: Key{KindSingle, 2, 0, 1}, Arg: 1},
		{Op: OpPermuteColl, A: Key{KindColl, 0, 0, 9}, B: Key{KindColl, 2, 1, 6}},
		{Op: OpCrashLater, A: Key{KindFail, 0, 1, 6}},
		{Op: OpCrashLater, A: Key{Kind: KindCrash, Rank: 1}},
		{Op: OpCrashEarlier, A: Key{KindFail, 0, 1, 6}},
		{Op: OpToggleSend, A: Key{KindSend, 3, 0, 1}},
		{Op: OpToggleSend, A: Key{KindSend, 3, 1, 2}},
	}
}

// TestMutationsRoundTripCodec: every operator's mutant validates,
// serializes through the wire codec, and decodes back to the exact
// record list — mutation never produces an unloadable stream.
func TestMutationsRoundTripCodec(t *testing.T) {
	rec := mutableRecorder()
	_, seed := rec.snapshot()
	plan := chaos.Plan{Seed: 11, CrashRank: 1, CrashAfterCalls: 2}
	for _, m := range oneOfEach() {
		t.Run(m.String(), func(t *testing.T) {
			mutated, err := ApplyMutations(seed, []Mutation{m})
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			if err := ValidateRecords(mutated); err != nil {
				t.Fatalf("mutant fails validation: %v", err)
			}
			data := EncodeRecords(plan, mutated)
			s, err := Read(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("mutant does not decode: %v", err)
			}
			got := s.Records()
			if len(got) != len(mutated) {
				t.Fatalf("round-trip lost records: %d != %d", len(got), len(mutated))
			}
			for i := range got {
				if got[i] != mutated[i] {
					t.Errorf("record %d did not round-trip:\n got %+v\nwant %+v", i, got[i], mutated[i])
				}
			}
			// Serialization is canonical: re-encoding the decoded records
			// reproduces the bytes.
			if again := EncodeRecords(s.Plan(), got); !bytes.Equal(again, data) {
				t.Error("mutant bytes are not canonical")
			}
		})
	}
}

// TestMutationsKeepSeqMonotone: after any mutation, the canonical
// order still walks each thread's schedule points in non-decreasing
// seq with no duplicate keys — the invariant replay's per-thread
// point allocation depends on.
func TestMutationsKeepSeqMonotone(t *testing.T) {
	_, seed := mutableRecorder().snapshot()
	for _, m := range oneOfEach() {
		t.Run(m.String(), func(t *testing.T) {
			mutated, err := ApplyMutations(seed, []Mutation{m})
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			type thread struct{ rank, tid int }
			last := map[thread]uint64{}
			seen := map[Key]struct{}{}
			for _, rec := range mutated {
				if rec.Kind == KindCrash {
					continue
				}
				k := rec.RecordKey()
				if _, dup := seen[k]; dup {
					t.Fatalf("duplicate key %s", k)
				}
				seen[k] = struct{}{}
				th := thread{rec.Rank, rec.TID}
				if rec.Seq < last[th] {
					t.Fatalf("seq not monotone on p%d.t%d: %d after %d", rec.Rank, rec.TID, rec.Seq, last[th])
				}
				last[th] = rec.Seq
			}
		})
	}
}

// TestMutationsComposeAndMinimize: the whole operator list applies as
// one stack, and dropping any single entry (the delta-debug move)
// still applies cleanly or fails with a typed error — never a panic.
func TestMutationsComposeAndMinimize(t *testing.T) {
	_, seed := mutableRecorder().snapshot()
	muts := []Mutation{
		{Op: OpFlipMatch, A: Key{KindMatch, 0, 0, 2}, B: Key{KindMatch, 0, 0, 5}},
		{Op: OpSwapLocks, A: Key{KindLock, 0, 0, 7}, B: Key{KindLock, 0, 1, 3}},
		{Op: OpToggleSend, A: Key{KindSend, 3, 0, 1}},
		{Op: OpCrashLater, A: Key{Kind: KindCrash, Rank: 1}},
	}
	if _, err := ApplyMutations(seed, muts); err != nil {
		t.Fatalf("stack does not apply: %v", err)
	}
	for i := range muts {
		dropped := append(append([]Mutation{}, muts[:i]...), muts[i+1:]...)
		if _, err := ApplyMutations(seed, dropped); err != nil {
			t.Errorf("drop %d: %v", i, err)
		}
	}
}

// TestMutationErrors: structurally invalid edits surface as typed
// errors, not panics or corrupt lists.
func TestMutationErrors(t *testing.T) {
	_, seed := mutableRecorder().snapshot()
	bad := []Mutation{
		{Op: OpFlipMatch, A: Key{KindMatch, 0, 0, 2}, B: Key{KindMatch, 0, 0, 2}}, // same record
		{Op: OpFlipMatch, A: Key{KindMatch, 9, 0, 1}, B: Key{KindMatch, 0, 0, 5}}, // missing
		{Op: OpSwapLocks, A: Key{KindLock, 0, 0, 7}, B: Key{KindMatch, 0, 0, 5}},  // wrong kind
		{Op: OpReassignSingle, A: Key{KindSingle, 2, 0, 1}, Arg: 0},               // own thread
		{Op: OpPermuteColl, A: Key{KindColl, 0, 0, 9}, B: Key{KindLock, 0, 1, 3}}, // wrong kind
		{Op: OpCrashLater, A: Key{Kind: KindCrash, Rank: 7}},                      // no such crash
		{Op: OpCrashEarlier, A: Key{KindFail, 1, 1, 1}},                           // missing
		{Op: "spin-wildly", A: Key{KindSend, 3, 0, 1}},                            // unknown op
	}
	for _, m := range bad {
		if _, err := ApplyMutations(seed, []Mutation{m}); err == nil {
			t.Errorf("%s: expected error", m)
		}
	}
	// crash-earlier at seq 1 has no earlier point.
	early := []Record{{Kind: KindFail, Rank: 0, TID: 0, Seq: 1, Dead1: 2}}
	if _, err := ApplyMutations(early, []Mutation{{Op: OpCrashEarlier, A: Key{KindFail, 0, 0, 1}}}); err == nil {
		t.Error("crash-earlier at seq 1: expected error")
	}
}

// TestCrashLaterRevival: a crash-record target erases the rank's death
// everywhere — crash record, every observation of it, the rank's own
// aborts — and nothing else.
func TestCrashLaterRevival(t *testing.T) {
	_, seed := mutableRecorder().snapshot()
	out, err := ApplyMutations(seed, []Mutation{{Op: OpCrashLater, A: Key{Kind: KindCrash, Rank: 1}}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	for _, rec := range out {
		switch {
		case rec.Kind == KindCrash:
			t.Errorf("crash record survived revival: %+v", rec)
		case rec.Kind == KindFail && rec.DeadRank() == 1:
			t.Errorf("death observation survived revival: %+v", rec)
		case rec.Kind == KindAbort && rec.Rank == 1:
			t.Errorf("abort survived revival: %+v", rec)
		}
	}
	if len(out) != len(seed)-4 {
		t.Errorf("revival removed %d records, want 4", len(seed)-len(out))
	}
}

// TestValidateRecordsRejects: the validator refuses the record shapes
// the codec could not faithfully round-trip.
func TestValidateRecordsRejects(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
	}{
		{"unknown kind", Record{Kind: "warp", Rank: 0}},
		{"negative rank", Record{Kind: KindSend, Rank: -1}},
		{"fail without dead rank", Record{Kind: KindFail, Rank: 0, Seq: 1}},
		{"match without sender", Record{Kind: KindMatch, Rank: 0, Seq: 1, SrcSeq: 3}},
		{"coll without ordinal", Record{Kind: KindColl, Rank: 0, Seq: 1, Comm1: 1, CollSeq: 1}},
		{"lock without ticket", Record{Kind: KindLock, Rank: 0, Seq: 1}},
		{"inverted chunk", Record{Kind: KindChunk, Rank: 0, Seq: 1, Base: 5, End: 2}},
		{"negative send retries", Record{Kind: KindSend, Rank: 0, Seq: 1, Retries: -1}},
	}
	for _, c := range cases {
		if err := ValidateRecords([]Record{c.rec}); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := ValidateRecords([]Record{
		{Kind: KindSend, Rank: 0, Seq: 1},
		{Kind: KindSend, Rank: 0, Seq: 1},
	}); err == nil {
		t.Error("duplicate keys: expected error")
	}
}

// TestEchoDuplicateCollapse: in echo mode a forced decision can be
// booked by both the echo source and a runtime Observe hook; the
// snapshot collapses the identical duplicates so the realized
// schedule stays loadable.
func TestEchoDuplicateCollapse(t *testing.T) {
	r := NewRecorder()
	r.RecordMatch(2, 0, 20, chaos.MsgID{Rank: 1, TID: 0, Seq: 3})
	r.RecordMatch(2, 0, 20, chaos.MsgID{Rank: 1, TID: 0, Seq: 3})
	if r.Len() != 2 {
		t.Fatalf("raw len = %d", r.Len())
	}
	if _, err := r.Schedule(); err != nil {
		t.Fatalf("identical duplicates should collapse: %v", err)
	}
	if got := len(r.Records()); got != 1 {
		t.Errorf("snapshot kept %d records, want 1", got)
	}
	// Same key, different payload: still rejected.
	r2 := NewRecorder()
	r2.RecordMatch(2, 0, 20, chaos.MsgID{Rank: 1, TID: 0, Seq: 3})
	r2.RecordMatch(2, 0, 20, chaos.MsgID{Rank: 0, TID: 1, Seq: 5})
	if _, err := r2.Schedule(); err == nil {
		t.Error("conflicting duplicates should be rejected")
	}
}
