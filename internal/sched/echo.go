package sched

// Echo source: replay a schedule while re-recording the run's
// *realized* schedule. A mutant schedule usually replays only
// partially — execution diverges past the edited decision and the
// runtime falls back to live resolution, which the attached recorder
// captures through the ordinary Observe* hooks. The forced decisions,
// however, never reach those hooks (replay branches re-apply records
// instead of observing fresh ones), so the echo source copies every
// lookup hit verbatim into the recorder. The union — echoed forced
// prefix plus live-observed suffix — is a complete recording of the
// run that actually happened, and replaying it reproduces that run
// under the usual record/replay guarantee. That is how the explorer
// turns a diverging mutant into a deterministic minimal repro.

import (
	"sync"

	"home/internal/chaos"
)

// echoSource wraps a Schedule so every hit is re-recorded. Hits are
// deduplicated by key: a replay path may consult the same record more
// than once, but the realized schedule must stay canonical.
type echoSource struct {
	s   *Schedule
	rec *Recorder
	mu  sync.Mutex
	out map[Key]struct{}
}

// Echo returns a chaos.Source that replays s and echoes every record
// it forces into rec. Attach rec as the run's recorder too, so live
// fallback decisions past the forced prefix are captured alongside.
func Echo(s *Schedule, rec *Recorder) chaos.Source {
	return &echoSource{s: s, rec: rec, out: make(map[Key]struct{})}
}

func (e *echoSource) take(kind string, rank, tid int, seq uint64) (Record, bool) {
	rec, ok := e.s.lookup(kind, rank, tid, seq)
	if !ok {
		return rec, false
	}
	k := Key{kind, rank, tid, seq}
	e.mu.Lock()
	if _, dup := e.out[k]; !dup {
		e.out[k] = struct{}{}
		e.rec.add(rec)
	}
	e.mu.Unlock()
	return rec, true
}

// SendFault implements chaos.Source.
func (e *echoSource) SendFault(rank, tid int, seq uint64) (chaos.SendFault, bool) {
	rec, ok := e.take(KindSend, rank, tid, seq)
	if !ok {
		return chaos.SendFault{}, false
	}
	return chaos.SendFault{
		DelayNs: rec.DelayNs, Reorder: rec.Reorder,
		Retries: rec.Retries, BackoffNs: rec.BackoffNs,
	}, true
}

// Stall implements chaos.Source.
func (e *echoSource) Stall(rank, tid int, seq uint64) (chaos.Stall, bool) {
	rec, ok := e.take(KindStall, rank, tid, seq)
	if !ok {
		return chaos.Stall{}, false
	}
	return chaos.Stall{VirtualNs: rec.StallNs}, true
}

// RMADelay implements chaos.Source.
func (e *echoSource) RMADelay(rank, tid int, seq uint64) (int64, bool) {
	rec, ok := e.take(KindRMA, rank, tid, seq)
	if !ok {
		return 0, false
	}
	return rec.DelayNs, true
}

// Fail implements chaos.Source.
func (e *echoSource) Fail(rank, tid int, seq uint64) (int, bool) {
	rec, ok := e.take(KindFail, rank, tid, seq)
	if !ok {
		return 0, false
	}
	return rec.DeadRank(), true
}

// Abort implements chaos.Source.
func (e *echoSource) Abort(rank, tid int, seq uint64) bool {
	_, ok := e.take(KindAbort, rank, tid, seq)
	return ok
}

// Match implements chaos.Source.
func (e *echoSource) Match(rank, tid int, seq uint64) (chaos.MsgID, bool) {
	rec, ok := e.take(KindMatch, rank, tid, seq)
	if !ok {
		return chaos.MsgID{}, false
	}
	return rec.Msg(), true
}

// Poll implements chaos.Source.
func (e *echoSource) Poll(rank, tid int, seq uint64) (chaos.MsgID, bool) {
	rec, ok := e.take(KindPoll, rank, tid, seq)
	if !ok {
		return chaos.MsgID{}, false
	}
	return rec.Msg(), true
}

// Crashes implements chaos.Source. The world pre-marks replayed
// crashes without any Observe hook firing, so the echo emits the crash
// records here.
func (e *echoSource) Crashes() []int {
	ranks := e.s.Crashes()
	for _, r := range ranks {
		k := Key{Kind: KindCrash, Rank: r}
		e.mu.Lock()
		if _, dup := e.out[k]; !dup {
			e.out[k] = struct{}{}
			e.rec.RecordCrash(r)
		}
		e.mu.Unlock()
	}
	return ranks
}

// CollJoin implements chaos.Source.
func (e *echoSource) CollJoin(rank, tid int, seq uint64) (chaos.CollOrder, bool) {
	rec, ok := e.take(KindColl, rank, tid, seq)
	if !ok {
		return chaos.CollOrder{}, false
	}
	return rec.CollOrder(), true
}

// LockGrant implements chaos.Source.
func (e *echoSource) LockGrant(rank, tid int, seq uint64) (uint64, bool) {
	rec, ok := e.take(KindLock, rank, tid, seq)
	if !ok {
		return 0, false
	}
	return rec.Ticket, true
}

// SingleWin implements chaos.Source.
func (e *echoSource) SingleWin(rank, tid int, ord uint64) bool {
	_, ok := e.take(KindSingle, rank, tid, ord)
	return ok
}

// Chunk implements chaos.Source.
func (e *echoSource) Chunk(rank, tid int, seq uint64) (base, end int64, ok bool) {
	rec, found := e.take(KindChunk, rank, tid, seq)
	if !found {
		return 0, 0, false
	}
	return rec.Base, rec.End, true
}

// PinsOrders implements chaos.Source.
func (e *echoSource) PinsOrders() bool { return e.s.PinsOrders() }
