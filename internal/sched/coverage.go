package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Schedule-space coverage. A recorded schedule is one realized point
// in the space of legal interleavings; coverage reduces it to the
// sets of distinct scheduling decisions it exercised, so a corpus of
// runs can answer "how much of the schedule space have we seen" — the
// fitness signal a schedule explorer maximizes. Four families:
//
//   - Matches: wildcard receive/probe resolutions — which message a
//     nondeterministic receive actually claimed.
//   - Collectives: collective-membership signatures — which arrivals,
//     in which order, formed each completed collective instance.
//   - LockOrders: lock-ticket permutations — which acquisition slot
//     each contended OpenMP lock acquire was granted.
//   - CrashPoints: where crash-stops landed and where their failures
//     were observed (crash/fail/abort positions).
//
// Signatures are canonical strings (ranks and tids 0-based, sorted),
// so coverage sets from different runs union exactly and a merged
// corpus set counts distinct decisions, not runs.

// Coverage is the distinct-decision summary of one or more runs. The
// slices are sorted and duplicate-free; empty families are omitted
// from JSON.
type Coverage struct {
	Matches     []string `json:"matches,omitempty"`
	Collectives []string `json:"collectives,omitempty"`
	LockOrders  []string `json:"lockOrders,omitempty"`
	CrashPoints []string `json:"crashPoints,omitempty"`
}

// CoverageOf computes the coverage of one recorded schedule.
func CoverageOf(recs []Record) Coverage {
	matches := map[string]struct{}{}
	locks := map[string]struct{}{}
	crashes := map[string]struct{}{}
	// Collective instances accumulate members first, then sign.
	type collKey struct {
		comm int
		seq  int64
	}
	colls := map[collKey]map[string]struct{}{}
	for _, rec := range recs {
		switch rec.Kind {
		case KindMatch:
			m := rec.Msg()
			matches[fmt.Sprintf("p%d.t%d@%d<-p%d.t%d#%d",
				rec.Rank, rec.TID, rec.Seq, m.Rank, m.TID, m.Seq)] = struct{}{}
		case KindPoll:
			m := rec.Msg()
			if rec.SrcSeq == 0 {
				// Bare completion poll: the decision is that it succeeded
				// at this point at all.
				matches[fmt.Sprintf("poll:p%d.t%d@%d", rec.Rank, rec.TID, rec.Seq)] = struct{}{}
			} else {
				matches[fmt.Sprintf("poll:p%d.t%d@%d<-p%d.t%d#%d",
					rec.Rank, rec.TID, rec.Seq, m.Rank, m.TID, m.Seq)] = struct{}{}
			}
		case KindColl:
			k := collKey{comm: rec.Comm1 - 1, seq: rec.CollSeq}
			if colls[k] == nil {
				colls[k] = map[string]struct{}{}
			}
			colls[k][fmt.Sprintf("p%d.t%d:%d", rec.Rank, rec.TID, rec.Ord)] = struct{}{}
		case KindLock:
			locks[fmt.Sprintf("p%d.t%d@%d=%d", rec.Rank, rec.TID, rec.Seq, rec.Ticket)] = struct{}{}
		case KindCrash:
			crashes[fmt.Sprintf("crash:p%d", rec.Rank)] = struct{}{}
		case KindFail:
			crashes[fmt.Sprintf("fail:p%d.t%d@%d<-p%d",
				rec.Rank, rec.TID, rec.Seq, rec.DeadRank())] = struct{}{}
		case KindAbort:
			crashes[fmt.Sprintf("abort:p%d.t%d@%d", rec.Rank, rec.TID, rec.Seq)] = struct{}{}
		}
	}
	collSigs := map[string]struct{}{}
	for k, memberSet := range colls {
		members := sortedSet(memberSet)
		collSigs[fmt.Sprintf("c%d#%d[%s]", k.comm, k.seq, strings.Join(members, " "))] = struct{}{}
	}
	return Coverage{
		Matches:     sortedSet(matches),
		Collectives: sortedSet(collSigs),
		LockOrders:  sortedSet(locks),
		CrashPoints: sortedSet(crashes),
	}
}

func sortedSet(m map[string]struct{}) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Merge unions two coverage sets. Commutative and associative, like
// obs.Snapshot.Merge; neither operand is modified.
func (c Coverage) Merge(o Coverage) Coverage {
	return Coverage{
		Matches:     unionSorted(c.Matches, o.Matches),
		Collectives: unionSorted(c.Collectives, o.Collectives),
		LockOrders:  unionSorted(c.LockOrders, o.LockOrders),
		CrashPoints: unionSorted(c.CrashPoints, o.CrashPoints),
	}
}

func unionSorted(a, b []string) []string {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	set := make(map[string]struct{}, len(a)+len(b))
	for _, s := range a {
		set[s] = struct{}{}
	}
	for _, s := range b {
		set[s] = struct{}{}
	}
	return sortedSet(set)
}

// CoverageCounts is the per-family cardinality of a Coverage — the
// compact form reports tabulate.
type CoverageCounts struct {
	Matches     int `json:"matches"`
	Collectives int `json:"collectives"`
	LockOrders  int `json:"lockOrders"`
	CrashPoints int `json:"crashPoints"`
}

// Counts returns the per-family cardinalities.
func (c Coverage) Counts() CoverageCounts {
	return CoverageCounts{
		Matches:     len(c.Matches),
		Collectives: len(c.Collectives),
		LockOrders:  len(c.LockOrders),
		CrashPoints: len(c.CrashPoints),
	}
}

// Total returns the total number of distinct decisions across all
// families.
func (c Coverage) Total() int {
	return len(c.Matches) + len(c.Collectives) + len(c.LockOrders) + len(c.CrashPoints)
}

// Records returns a sorted copy of the accumulated records (the same
// canonical order the wire format uses).
func (r *Recorder) Records() []Record {
	_, recs := r.snapshot()
	return recs
}

// Coverage computes the coverage of the schedule recorded so far.
func (r *Recorder) Coverage() Coverage {
	return CoverageOf(r.Records())
}

// Records returns the schedule's records in canonical order.
func (s *Schedule) Records() []Record {
	recs := make([]Record, len(s.recs))
	copy(recs, s.recs)
	return recs
}

// Coverage computes the coverage of a loaded schedule — what a replay
// of it will exercise.
func (s *Schedule) Coverage() Coverage {
	return CoverageOf(s.recs)
}
