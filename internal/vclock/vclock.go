// Package vclock implements vector clocks for establishing the
// happens-before partial order among events of concurrently executing
// threads, in the style of Lamport's logical clocks generalized to
// vectors (one component per thread).
//
// A vector clock maps a thread identity to the number of "epochs" that
// thread has completed. Clock C1 happens-before clock C2 iff every
// component of C1 is <= the corresponding component of C2 and the two
// clocks differ. Two clocks neither of which happens-before the other
// are concurrent; that is the condition the race detectors test.
//
// Thread identities are opaque int64 values so a single clock space can
// span MPI ranks and OpenMP threads: callers typically encode
// (rank, tid) pairs via a scheme of their choosing.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// TID identifies a logical thread within a clock space.
type TID int64

// VC is a vector clock. The zero value is a valid clock with all
// components zero. VC values are not safe for concurrent mutation;
// callers synchronize externally (the detectors own their clocks).
type VC map[TID]uint64

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Get returns the component for thread t (zero if absent).
func (c VC) Get(t TID) uint64 { return c[t] }

// Set assigns the component for thread t.
func (c VC) Set(t TID, v uint64) { c[t] = v }

// Tick increments the component for thread t and returns the new value.
func (c VC) Tick(t TID) uint64 {
	c[t]++
	return c[t]
}

// Copy returns a deep copy of the clock.
func (c VC) Copy() VC {
	out := make(VC, len(c))
	for t, v := range c {
		out[t] = v
	}
	return out
}

// Join sets c to the component-wise maximum of c and other. It
// implements the "receive" side of message-based clock propagation and
// the merge performed at synchronization points (barriers, joins).
func (c VC) Join(other VC) {
	for t, v := range other {
		if v > c[t] {
			c[t] = v
		}
	}
}

// Leq reports whether c happens-before-or-equals other: every component
// of c is <= the matching component of other.
func (c VC) Leq(other VC) bool {
	for t, v := range c {
		if v == 0 {
			continue
		}
		if v > other[t] {
			return false
		}
	}
	return true
}

// HappensBefore reports whether c strictly happens-before other.
func (c VC) HappensBefore(other VC) bool {
	return c.Leq(other) && !other.Leq(c)
}

// Concurrent reports whether neither clock happens-before the other and
// the clocks are not equal — i.e. the events they stamp are logically
// simultaneous.
func (c VC) Concurrent(other VC) bool {
	return !c.Leq(other) && !other.Leq(c)
}

// Equal reports whether the two clocks have identical components
// (treating absent components as zero).
func (c VC) Equal(other VC) bool {
	return c.Leq(other) && other.Leq(c)
}

// ExceedsAt returns the smallest thread identity whose component in c
// strictly exceeds the one in other — the witness component proving
// !c.Leq(other). ok is false when c.Leq(other) holds (no witness).
func (c VC) ExceedsAt(other VC) (t TID, ok bool) {
	found := false
	for ct, v := range c {
		if v > other[ct] && (!found || ct < t) {
			t, found = ct, true
		}
	}
	return t, found
}

// Certificate is a concurrency certificate for a clock pair (a, b):
// component AT proves !a.Leq(b) (a saw AT-events b had not) and BT
// proves !b.Leq(a). Together they demonstrate that no happens-before
// edge orders the two stamped events in either direction.
type Certificate struct {
	AT TID
	AV uint64 // a[AT], with b[AT] < AV
	BT TID
	BV uint64 // b[BT], with a[BT] < BV
}

// WhyConcurrent extracts the concurrency certificate of two clocks,
// choosing the smallest witness components for deterministic output.
// ok is false when the clocks are ordered (no certificate exists).
func WhyConcurrent(a, b VC) (cert Certificate, ok bool) {
	at, aok := a.ExceedsAt(b)
	bt, bok := b.ExceedsAt(a)
	if !aok || !bok {
		return Certificate{}, false
	}
	return Certificate{AT: at, AV: a[at], BT: bt, BV: b[bt]}, true
}

// String renders the clock as {t1:v1, t2:v2, ...} with threads sorted,
// for stable test output and diagnostics.
func (c VC) String() string {
	tids := make([]TID, 0, len(c))
	for t, v := range c {
		if v != 0 {
			tids = append(tids, t)
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range tids {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%d", t, c[t])
	}
	b.WriteByte('}')
	return b.String()
}

// Epoch is a compact (thread, value) pair: the last-write epoch of a
// location. Many race detectors store an epoch per location and fall
// back to full vectors only on contention (FastTrack); we keep the type
// for that optimization in the detectors.
type Epoch struct {
	T TID
	V uint64
}

// Leq reports whether the epoch happens-before-or-equals clock c —
// i.e. c has already observed this write.
func (e Epoch) Leq(c VC) bool { return e.V <= c[e.T] }

// EpochOf extracts thread t's current epoch from clock c.
func EpochOf(c VC, t TID) Epoch { return Epoch{T: t, V: c[t]} }
