package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueLeqEverything(t *testing.T) {
	var zero VC = New()
	other := VC{1: 5, 2: 3}
	if !zero.Leq(other) {
		t.Fatalf("empty clock must be <= any clock")
	}
	if other.Leq(zero) {
		t.Fatalf("nonzero clock must not be <= empty clock")
	}
}

func TestTickAdvances(t *testing.T) {
	c := New()
	if got := c.Tick(7); got != 1 {
		t.Fatalf("first tick = %d, want 1", got)
	}
	if got := c.Tick(7); got != 2 {
		t.Fatalf("second tick = %d, want 2", got)
	}
	if c.Get(7) != 2 {
		t.Fatalf("Get after ticks = %d, want 2", c.Get(7))
	}
	if c.Get(8) != 0 {
		t.Fatalf("untouched component = %d, want 0", c.Get(8))
	}
}

func TestHappensBeforeBasic(t *testing.T) {
	a := VC{1: 1}
	b := VC{1: 2}
	if !a.HappensBefore(b) {
		t.Fatalf("{1:1} should happen before {1:2}")
	}
	if b.HappensBefore(a) {
		t.Fatalf("{1:2} should not happen before {1:1}")
	}
	if a.Concurrent(b) {
		t.Fatalf("ordered clocks must not be concurrent")
	}
}

func TestConcurrent(t *testing.T) {
	a := VC{1: 2, 2: 0}
	b := VC{1: 1, 2: 1}
	if !a.Concurrent(b) || !b.Concurrent(a) {
		t.Fatalf("%v and %v should be concurrent", a, b)
	}
	if a.HappensBefore(b) || b.HappensBefore(a) {
		t.Fatalf("concurrent clocks must not be ordered")
	}
}

func TestJoinIsComponentwiseMax(t *testing.T) {
	a := VC{1: 2, 2: 5}
	b := VC{1: 7, 3: 1}
	a.Join(b)
	want := VC{1: 7, 2: 5, 3: 1}
	if !a.Equal(want) {
		t.Fatalf("join = %v, want %v", a, want)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	a := VC{1: 1}
	b := a.Copy()
	b.Tick(1)
	if a.Get(1) != 1 {
		t.Fatalf("mutating copy changed original: %v", a)
	}
}

func TestEpoch(t *testing.T) {
	c := VC{3: 4}
	e := EpochOf(c, 3)
	if e.T != 3 || e.V != 4 {
		t.Fatalf("EpochOf = %+v", e)
	}
	if !e.Leq(VC{3: 4}) || !e.Leq(VC{3: 9}) {
		t.Fatalf("epoch should be <= clocks that observed it")
	}
	if e.Leq(VC{3: 3}) {
		t.Fatalf("epoch should not be <= older clock")
	}
}

func TestStringStable(t *testing.T) {
	c := VC{5: 1, 2: 3, 9: 7}
	const want = "{2:3, 5:1, 9:7}"
	for i := 0; i < 10; i++ {
		if got := c.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}

// randVC builds a small random clock for property tests.
func randVC(r *rand.Rand) VC {
	c := New()
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		c[TID(r.Intn(4))] = uint64(r.Intn(4))
	}
	return c
}

func TestPropLeqPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Reflexivity, antisymmetry (up to Equal), transitivity.
	f := func() bool {
		a, b, c := randVC(r), randVC(r), randVC(r)
		if !a.Leq(a) {
			return false
		}
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) {
			return false
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropJoinIsLUB(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randVC(r), randVC(r)
		j := a.Copy()
		j.Join(b)
		// Upper bound.
		if !a.Leq(j) || !b.Leq(j) {
			return false
		}
		// Least: any other upper bound dominates the join.
		u := a.Copy()
		u.Join(b)
		u.Join(randVC(r)) // arbitrary larger clock
		return j.Leq(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropJoinCommutativeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randVC(r), randVC(r)
		ab := a.Copy()
		ab.Join(b)
		ba := b.Copy()
		ba.Join(a)
		if !ab.Equal(ba) {
			return false
		}
		aa := a.Copy()
		aa.Join(a)
		return aa.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropExactlyOneRelation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randVC(r), randVC(r)
		rel := 0
		if a.Equal(b) {
			rel++
		}
		if a.HappensBefore(b) {
			rel++
		}
		if b.HappensBefore(a) {
			rel++
		}
		if a.Concurrent(b) {
			rel++
		}
		return rel == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}
