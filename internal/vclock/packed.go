package vclock

// Packed is the dense, slice-backed fast path for the detector's
// clock algebra. The map-backed VC stays as the reference
// implementation (internal/difftest proves the two agree); Packed
// exists to make the hot operations cheap:
//
//   - Components live in a slice indexed by dense Slot numbers that a
//     shared Space interns from sparse TIDs, so comparisons and joins
//     are linear scans over contiguous memory instead of map walks.
//   - A clock owned by a thread carries its own component out-of-line
//     as a FastTrack-style epoch (own slot, own value). Tick is O(1)
//     and never touches the slice, so a clock whose slice is shared
//     with a snapshot can keep ticking without copying.
//   - Snapshot freezes the slice and shares it (O(1)); the owner
//     clones lazily on its next structural mutation (copy-on-write).
//   - Leq/Concurrent first try the O(1) epoch refutation — the owner's
//     component is the strict maximum across the system for that slot,
//     so one comparison usually settles the direction — and fall back
//     to the full O(width) scan only when the epoch is inconclusive.
//   - Adopt replaces a clock's components wholesale with a frozen
//     snapshot's (sharing the slice) when the join result would equal
//     the snapshot plus the clock's own component — the common case at
//     fork→begin, end→join accumulation and barrier completion. The
//     validity check is a read-only scan; no allocation, no writes.
type Packed struct {
	sp     *Space
	base   []uint64
	frozen bool // base is shared with a snapshot; clone before writing
	own    Slot // owning thread's slot, or NoSlot for accumulators
	ownV   uint64
}

// Slot is a dense component index interned by a Space. Slot numbers
// depend on interning order and are meaningless across Spaces.
type Slot int32

// NoSlot marks a clock with no owning thread (accumulators).
const NoSlot Slot = -1

// Space interns sparse TIDs to dense slots. One Space is shared by
// every clock of one analysis; it is not safe for concurrent
// interning (the analyzers intern during the single-threaded replay
// phase), but read-only lookups after interning are safe to share.
type Space struct {
	slots map[TID]Slot
	tids  []TID
}

// NewSpace returns an empty slot space.
func NewSpace() *Space { return &Space{slots: make(map[TID]Slot)} }

// SlotOf interns (creating if needed) the slot for thread t.
func (s *Space) SlotOf(t TID) Slot {
	if sl, ok := s.slots[t]; ok {
		return sl
	}
	sl := Slot(len(s.tids))
	s.slots[t] = sl
	s.tids = append(s.tids, t)
	return sl
}

// Lookup returns the slot for t without interning.
func (s *Space) Lookup(t TID) (Slot, bool) {
	sl, ok := s.slots[t]
	return sl, ok
}

// TIDOf returns the thread identity a slot was interned for.
func (s *Space) TIDOf(sl Slot) TID { return s.tids[sl] }

// Width returns the number of interned threads.
func (s *Space) Width() int { return len(s.tids) }

// Clock returns a fresh all-zero clock owned by thread t.
func (s *Space) Clock(t TID) *Packed {
	return &Packed{sp: s, own: s.SlotOf(t)}
}

// Acc returns a fresh all-zero accumulator clock (no owning thread).
func (s *Space) Acc() *Packed { return &Packed{sp: s, own: NoSlot} }

// at returns the component at slot sl (the own epoch overrides the
// slice).
func (c *Packed) at(sl Slot) uint64 {
	var v uint64
	if int(sl) < len(c.base) {
		v = c.base[sl]
	}
	if sl == c.own && c.ownV > v {
		v = c.ownV
	}
	return v
}

// AtSlot returns the component at a dense slot — the detector's O(1)
// epoch-vs-clock test reads exactly one of these.
func (c *Packed) AtSlot(sl Slot) uint64 { return c.at(sl) }

// Get returns the component for thread t (zero if t was never
// interned).
func (c *Packed) Get(t TID) uint64 {
	sl, ok := c.sp.Lookup(t)
	if !ok {
		return 0
	}
	return c.at(sl)
}

// OwnSlot returns the owning thread's slot (NoSlot for accumulators).
func (c *Packed) OwnSlot() Slot { return c.own }

// OwnV returns the owning thread's component.
func (c *Packed) OwnV() uint64 { return c.ownV }

// Tick increments the owning thread's component and returns the new
// value. O(1): the own component lives out-of-line, so a frozen
// (snapshot-shared) slice needs no copy.
func (c *Packed) Tick() uint64 {
	if c.own < 0 {
		panic("vclock: Tick on accumulator clock")
	}
	c.ownV++
	return c.ownV
}

// materialize makes base privately writable with room for at least w
// slots, baking the own epoch into the slice.
func (c *Packed) materialize(w int) {
	if c.own >= 0 && int(c.own)+1 > w {
		w = int(c.own) + 1
	}
	if len(c.base) > w {
		w = len(c.base)
	}
	if c.frozen || w > len(c.base) {
		nb := make([]uint64, w)
		copy(nb, c.base)
		c.base = nb
		c.frozen = false
	}
	if c.own >= 0 && c.base[c.own] < c.ownV {
		c.base[c.own] = c.ownV
	}
}

// Join folds other into c component-wise (the O(width) slow path).
func (c *Packed) Join(other *Packed) {
	w := len(other.base)
	if other.own >= 0 && int(other.own)+1 > w {
		w = int(other.own) + 1
	}
	c.materialize(w)
	for i, v := range other.base {
		if v > c.base[i] {
			c.base[i] = v
		}
	}
	if other.own >= 0 && other.ownV > c.base[other.own] {
		c.base[other.own] = other.ownV
	}
	if c.own >= 0 && c.base[c.own] > c.ownV {
		c.ownV = c.base[c.own]
	}
}

// Snapshot returns an O(1) frozen view of the clock sharing its
// slice. The view observes the clock's state as of now; the owner's
// next structural mutation (Join, Adopt) clones first. The own epoch
// stays out-of-line, so a Snapshot is a valid comparison operand but
// not a valid Adopt source — publication points use Publish.
func (c *Packed) Snapshot() *Packed {
	c.frozen = true
	return &Packed{sp: c.sp, base: c.base, frozen: true, own: c.own, ownV: c.ownV}
}

// Publish returns a frozen view with the own epoch baked into the
// slice — the form required of Adopt sources (fork snapshots, release
// clocks, join/barrier accumulators). Costs one clone when the owner
// ticked since the slice last saw its component; O(1) otherwise.
func (c *Packed) Publish() *Packed {
	if c.own >= 0 && (int(c.own) >= len(c.base) || c.base[c.own] < c.ownV) {
		c.materialize(0)
	}
	c.frozen = true
	return &Packed{sp: c.sp, base: c.base, frozen: true, own: c.own, ownV: c.ownV}
}

// Adopt is the O(1)-amortized fast path for joins whose result equals
// the source: it verifies (read-only) that every non-own component of
// c is already <= other's, then shares other's slice wholesale,
// keeping c's own epoch out-of-line. Reports false — leaving c
// unchanged — when the fast path does not apply (some component of c
// exceeds other's, or other carries an unbaked foreign epoch). When
// it returns true the result is exactly Join(c, other).
func (c *Packed) Adopt(other *Packed) bool {
	if other.own >= 0 && other.own != c.own {
		var bv uint64
		if int(other.own) < len(other.base) {
			bv = other.base[other.own]
		}
		if other.ownV > bv {
			return false // unbaked foreign epoch would be lost
		}
	}
	for i, v := range c.base {
		if v == 0 || Slot(i) == c.own {
			continue
		}
		if v > other.at(Slot(i)) {
			return false
		}
	}
	other.frozen = true
	c.base = other.base
	c.frozen = true
	if c.own >= 0 {
		if int(c.own) < len(c.base) && c.base[c.own] > c.ownV {
			c.ownV = c.base[c.own]
		}
	}
	return true
}

// refutes reports the O(1) epoch refutation of c.Leq(other): the
// owner's component is inconsistent with other having observed c.
func (c *Packed) refutes(other *Packed) bool {
	return c.own >= 0 && c.ownV > other.at(c.own)
}

// Leq reports whether c happens-before-or-equals other. The own-epoch
// refutation settles the common case in O(1); otherwise a full
// O(width) scan decides.
func (c *Packed) Leq(other *Packed) bool {
	if c.refutes(other) {
		return false
	}
	for i, v := range c.base {
		if v != 0 && v > other.at(Slot(i)) {
			return false
		}
	}
	return true
}

// HappensBefore reports whether c strictly happens-before other.
func (c *Packed) HappensBefore(other *Packed) bool {
	return c.Leq(other) && !other.Leq(c)
}

// Concurrent reports whether neither clock happens-before the other.
// When both epoch refutations fire the answer is settled in O(1).
func (c *Packed) Concurrent(other *Packed) bool {
	if c.refutes(other) && other.refutes(c) {
		return true
	}
	return !c.Leq(other) && !other.Leq(c)
}

// Equal reports whether the clocks have identical components.
func (c *Packed) Equal(other *Packed) bool {
	return c.Leq(other) && other.Leq(c)
}

// Components returns the number of nonzero components — the width
// statistic the detector's vc_width gauge tracks (matching the map
// implementation's entry count).
func (c *Packed) Components() int {
	n := 0
	for i, v := range c.base {
		if v != 0 || (Slot(i) == c.own && c.ownV != 0) {
			n++
		}
	}
	if c.own >= 0 && int(c.own) >= len(c.base) && c.ownV != 0 {
		n++
	}
	return n
}

// ExceedsAt returns the smallest thread identity whose component in c
// strictly exceeds the one in other (the witness proving
// !c.Leq(other)); ok is false when c.Leq(other).
func (c *Packed) ExceedsAt(other *Packed) (t TID, ok bool) {
	found := false
	consider := func(sl Slot) {
		if c.at(sl) > other.at(sl) {
			id := c.sp.TIDOf(sl)
			if !found || id < t {
				t, found = id, true
			}
		}
	}
	for i := range c.base {
		consider(Slot(i))
	}
	if c.own >= 0 && int(c.own) >= len(c.base) {
		consider(c.own)
	}
	return t, found
}

// WhyConcurrentPacked extracts the concurrency certificate of two
// packed clocks, matching WhyConcurrent on the equivalent VCs.
func WhyConcurrentPacked(a, b *Packed) (cert Certificate, ok bool) {
	at, aok := a.ExceedsAt(b)
	bt, bok := b.ExceedsAt(a)
	if !aok || !bok {
		return Certificate{}, false
	}
	return Certificate{AT: at, AV: a.Get(at), BT: bt, BV: b.Get(bt)}, true
}

// ToVC converts to the reference map representation (nonzero
// components only, matching what a VC built by Tick/Join would hold).
func (c *Packed) ToVC() VC {
	out := make(VC)
	for i, v := range c.base {
		if v != 0 {
			out[c.sp.TIDOf(Slot(i))] = v
		}
	}
	if c.own >= 0 && c.ownV != 0 {
		t := c.sp.TIDOf(c.own)
		if c.ownV > out[t] {
			out[t] = c.ownV
		}
	}
	return out
}

// String renders the clock like VC.String for diagnostics.
func (c *Packed) String() string { return c.ToVC().String() }
