package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPropJoinAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b, c := randVC(r), randVC(r), randVC(r)
		// (a ⊔ b) ⊔ c
		left := a.Copy()
		left.Join(b)
		left.Join(c)
		// a ⊔ (b ⊔ c)
		bc := b.Copy()
		bc.Join(c)
		right := a.Copy()
		right.Join(bc)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEpochConsistentWithLeq(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func() bool {
		a, b := randVC(r), randVC(r)
		for tid := TID(0); tid < 4; tid++ {
			e := EpochOf(a, tid)
			// The epoch is one component of a; a.Leq(b) means every
			// component passed, so every epoch of a must pass too.
			if a.Leq(b) && !e.Leq(b) {
				return false
			}
			// And the epoch test must agree with the component it
			// projects.
			if e.Leq(b) != (a.Get(tid) <= b.Get(tid)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// toPacked interns a reference clock into a space as an accumulator.
func toPacked(sp *Space, c VC) *Packed {
	p := sp.Acc()
	for t, v := range c {
		q := sp.Clock(t)
		for i := uint64(0); i < v; i++ {
			q.Tick()
		}
		p.Join(q)
	}
	return p
}

// TestPropPackedAlgebraMatchesVC converts random reference clocks to
// packed form and checks the relational algebra agrees. (The deeper
// operation-stream equivalence lives in internal/difftest; this is
// the in-package smoke version.)
func TestPropPackedAlgebraMatchesVC(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		sp := NewSpace()
		a, b := randVC(r), randVC(r)
		pa, pb := toPacked(sp, a), toPacked(sp, b)
		if !pa.ToVC().Equal(a) || !pb.ToVC().Equal(b) {
			return false
		}
		if pa.Leq(pb) != a.Leq(b) || pb.Leq(pa) != b.Leq(a) {
			return false
		}
		if pa.Concurrent(pb) != a.Concurrent(b) || pa.Equal(pb) != a.Equal(b) {
			return false
		}
		pt, pok := pa.ExceedsAt(pb)
		rt, rok := a.ExceedsAt(b)
		if pok != rok || (pok && pt != rt) {
			return false
		}
		return pa.String() == a.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedSnapshotIsImmutable(t *testing.T) {
	sp := NewSpace()
	c := sp.Clock(1)
	c.Tick()
	c.Tick()
	snap := c.Snapshot()
	want := snap.String()
	c.Tick()
	other := sp.Clock(2)
	other.Tick()
	c.Join(other.Publish())
	if snap.String() != want {
		t.Fatalf("snapshot mutated by owner activity: %s, want %s", snap, want)
	}
	if got := c.Get(1); got != 3 {
		t.Fatalf("owner component after snapshot = %d, want 3", got)
	}
}

func TestPackedAdoptEqualsJoin(t *testing.T) {
	sp := NewSpace()
	a, b := sp.Clock(1), sp.Clock(2)
	b.Tick()
	b.Tick()
	a.Tick()
	pub := b.Publish()
	// a has its own component only, so adopting b's published clock
	// must succeed and equal the join.
	ref := a.ToVC()
	ref.Join(b.ToVC())
	if !a.Adopt(pub) {
		t.Fatal("Adopt refused a dominated clock")
	}
	if !a.ToVC().Equal(ref) {
		t.Fatalf("Adopt result %s, want join result %s", a, ref)
	}
	// Now a has foreign knowledge b lacks; adopting a stale published
	// view must refuse and leave a unchanged.
	c := sp.Clock(3)
	c.Tick()
	a.Join(c.Publish())
	before := a.String()
	if a.Adopt(pub) {
		t.Fatal("Adopt accepted a clock missing foreign components")
	}
	if a.String() != before {
		t.Fatalf("failed Adopt mutated the clock: %s, want %s", a, before)
	}
}

func TestPackedAdoptRefusesUnbakedEpoch(t *testing.T) {
	sp := NewSpace()
	a, b := sp.Clock(1), sp.Clock(2)
	b.Tick()
	// A raw Snapshot (epoch not baked into the slice) is not a valid
	// adoption source: the foreign own component would be lost.
	if a.Adopt(b.Snapshot()) {
		t.Fatal("Adopt accepted an unbaked snapshot")
	}
	if !a.Adopt(b.Publish()) {
		t.Fatal("Adopt refused the published form of the same clock")
	}
	if got := a.Get(2); got != 1 {
		t.Fatalf("adopted component = %d, want 1", got)
	}
}

func TestPackedAccumulatorTickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Tick on an accumulator did not panic")
		}
	}()
	NewSpace().Acc().Tick()
}

func TestPackedComponentsMatchesMapWidth(t *testing.T) {
	sp := NewSpace()
	c := sp.Clock(7)
	if c.Components() != 0 {
		t.Fatalf("fresh clock has %d components", c.Components())
	}
	c.Tick()
	if c.Components() != 1 {
		t.Fatalf("ticked clock has %d components, want 1", c.Components())
	}
	d := sp.Clock(9)
	d.Tick()
	c.Join(d.Publish())
	if got, want := c.Components(), len(c.ToVC()); got != want {
		t.Fatalf("Components() = %d, map width = %d", got, want)
	}
}
