// Package npb generates the synthetic NPB-MZ-style hybrid workloads
// the experiments run: LU-MZ, BT-MZ and SP-MZ analogues written in
// MiniHPC.
//
// The real NAS multi-zone benchmarks partition a discretized 3-D
// domain into zones spread over MPI ranks, run SSOR (LU) or ADI
// (BT/SP) sweeps with OpenMP inside each zone, and exchange zone
// boundaries between ranks each time step. The generated programs
// reproduce that communication and threading *structure* at a
// simulator-friendly scale: worksharing sweeps whose per-cell cost is
// carried by the compute() intrinsic, an in-parallel-region boundary
// exchange with per-thread tags (the hybrid MPI-below-OpenMP pattern
// HOME instruments), a per-step residual Allreduce, and a final
// verification Reduce.
//
// Violations are injected with package faults, mirroring the paper's
// methodology; Generate records the source line span of every
// injected fragment so the harness can attribute each tool's reports
// to injection sites (and count false positives).
package npb

import (
	"fmt"
	"strings"

	"home/internal/faults"
	"home/internal/spec"
)

// Benchmark selects the workload.
type Benchmark int

const (
	// LU is the LU-MZ analogue: two SSOR-like sweeps per step.
	LU Benchmark = iota
	// BT is the BT-MZ analogue: three ADI sweeps per step plus the
	// benign critical-guarded collective pattern.
	BT
	// SP is the SP-MZ analogue: two sweeps plus an all-to-all
	// exchange per step.
	SP
)

func (b Benchmark) String() string {
	switch b {
	case LU:
		return "LU-MZ"
	case BT:
		return "BT-MZ"
	case SP:
		return "SP-MZ"
	}
	return fmt.Sprintf("Benchmark(%d)", int(b))
}

// MarshalText renders the benchmark name ("LU-MZ") in JSON output.
func (b Benchmark) MarshalText() ([]byte, error) { return []byte(b.String()), nil }

// All lists the three benchmarks.
func All() []Benchmark { return []Benchmark{LU, BT, SP} }

// Class scales the problem, loosely following NPB class letters.
type Class byte

// classParams returns (cells per rank, compute units per cell, steps).
func classParams(c Class) (cells, units, steps int) {
	switch c {
	case 'S':
		return 24, 30, 2
	case 'W':
		return 40, 40, 3
	case 'A':
		return 64, 60, 4
	case 'B':
		return 96, 80, 5
	case 'C':
		return 128, 100, 6
	default:
		return 64, 60, 4
	}
}

// benchShape returns the per-benchmark sweep count and cost factor.
func benchShape(b Benchmark) (sweeps int, factor float64) {
	switch b {
	case LU:
		return 2, 1.0
	case BT:
		return 3, 1.3
	case SP:
		return 2, 1.1
	}
	return 2, 1.0
}

// Options configures generation.
type Options struct {
	// Class scales the workload (default 'A').
	Class Class
	// Steps overrides the class step count when > 0.
	Steps int
	// Inject lists the violation kinds to plant.
	Inject []spec.Kind
	// Variants tunes injected snippets per kind (see faults.Variant).
	Variants map[spec.Kind]faults.Variant
	// FPTrap adds the benign critical-serialized collective pattern
	// that lock-ignorant tools misreport (used by BT, per the paper's
	// observed ITC false positive there).
	FPTrap bool
}

// Span is a [first, last] source line range.
type Span struct{ First, Last int }

// Contains reports whether the line falls in the span.
func (s Span) Contains(line int) bool { return line >= s.First && line <= s.Last }

// Source is a generated benchmark program.
type Source struct {
	Benchmark Benchmark
	Text      string
	// Spans maps each injected kind to its source line range.
	Spans map[spec.Kind]Span
	// TrapSpan is the benign FP-trap range (zero when absent).
	TrapSpan Span
}

// builder assembles source while tracking line numbers.
type builder struct {
	sb   strings.Builder
	line int // current (1-based) line being written next
}

func newBuilder() *builder { return &builder{line: 1} }

// add appends text and returns its [first, last] line span.
func (b *builder) add(text string) Span {
	first := b.line
	b.sb.WriteString(text)
	b.line += strings.Count(text, "\n")
	last := b.line - 1
	if last < first {
		last = first
	}
	return Span{First: first, Last: last}
}

func (b *builder) addf(format string, args ...any) Span {
	return b.add(fmt.Sprintf(format, args...))
}

// has reports whether kind is in the injection list.
func has(kinds []spec.Kind, k spec.Kind) bool {
	for _, x := range kinds {
		if x == k {
			return true
		}
	}
	return false
}

// Generate renders the benchmark program.
func Generate(bench Benchmark, o Options) *Source {
	if o.Class == 0 {
		o.Class = 'A'
	}
	cells, units, steps := classParams(o.Class)
	if o.Steps > 0 {
		steps = o.Steps
	}
	sweeps, factor := benchShape(bench)
	units = int(float64(units) * factor)

	variant := func(k spec.Kind) faults.Variant {
		if o.Variants == nil {
			return faults.Variant{}
		}
		return o.Variants[k]
	}

	level := "MPI_THREAD_MULTIPLE"
	if l := faults.InitLevelFor(o.Inject); l != "" {
		level = l
	}
	regionFinalize := faults.WantsRegionFinalize(o.Inject)

	src := &Source{Benchmark: bench, Spans: make(map[spec.Kind]Span)}
	b := newBuilder()

	b.addf(`/* %s synthetic multi-zone benchmark (class %c): %d cells/rank, %d sweeps, %d steps */
int main() {
  int provided;
  MPI_Init_thread(%s, &provided);
  int rank = MPI_Comm_rank(MPI_COMM_WORLD);
  int size = MPI_Comm_size(MPI_COMM_WORLD);
  int east = (rank + 1) %% size;
  int west = (rank + size - 1) %% size;
  double u[%d];
  double rsd[%d];
  double bnd[4];
  double resid[1];
  double total[1];
  for (int i = 0; i < %d; i++) {
    u[i] = 1.0 + i * 0.001 + rank * 0.01;
    rsd[i] = 0.0;
  }
`, bench, rune(o.Class), cells, sweeps, steps, level, cells, cells, cells)

	if has(o.Inject, spec.InitializationViolation) {
		// The initialization violation is the declared level itself;
		// attribute it to the Init_thread line (line 4 above).
		src.Spans[spec.InitializationViolation] = Span{First: 4, Last: 4}
	}

	b.addf("  for (int step = 0; step < %d; step++) {\n", steps)

	// Sweeps: worksharing loops with per-cell compute.
	for s := 0; s < sweeps; s++ {
		sched := "static"
		if s == 1 {
			sched = "dynamic, 8"
		}
		expr := "rsd[i] = u[i] * 0.99 + 0.01"
		if s%2 == 1 {
			expr = "u[i] = u[i] + rsd[i] * 0.1"
		}
		b.addf(`    /* sweep %d */
    #pragma omp parallel for schedule(%s)
    for (int i = 0; i < %d; i++) {
      compute(%d);
      %s;
    }
`, s, sched, cells, units, expr)
	}

	// Hybrid boundary exchange: one direction per thread, per-thread
	// tags — the correct pattern HOME instruments heavily.
	b.add(`    /* zone boundary exchange (hybrid: MPI inside the parallel region) */
    #pragma omp parallel num_threads(2)
    {
      int tid = omp_get_thread_num();
      if (tid == 0) {
        bnd[0] = rsd[0];
        MPI_Send(bnd, 1, east, 101, MPI_COMM_WORLD);
        MPI_Recv(bnd[1], 1, west, 101, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      } else {
        bnd[2] = rsd[0];
        MPI_Send(bnd[2], 1, west, 102, MPI_COMM_WORLD);
        MPI_Recv(bnd[3], 1, east, 102, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
    }
    u[0] = u[0] * 0.5 + (bnd[1] + bnd[3]) * 0.25;
`)

	if bench == SP {
		b.add(`    /* SP: transpose-style all-to-all exchange */
    double atoin[size];
    double atoout[size];
    for (int r = 0; r < size; r++) { atoin[r] = u[0] + r; }
    MPI_Alltoall(atoin, atoout, 1, MPI_COMM_WORLD);
    u[0] = u[0] + atoout[0] * 0.001;
`)
	}

	if o.FPTrap {
		src.TrapSpan = b.add(`    /* benign: critical-serialized collective (legal; a lock-ignorant
       checker misreports it as a collective-call violation) */
    #pragma omp parallel num_threads(2)
    {
      #pragma omp critical(coll)
      {
        MPI_Barrier(MPI_COMM_WORLD);
      }
    }
`)
	}

	// Injected violations execute on the first step only.
	injectable := []spec.Kind{
		spec.ConcurrentRecvViolation,
		spec.ConcurrentRequestViolation,
		spec.ProbeViolation,
		spec.CollectiveCallViolation,
	}
	anyInjected := false
	for _, k := range injectable {
		if has(o.Inject, k) {
			anyInjected = true
		}
	}
	if anyInjected {
		b.add("    if (step == 0) {\n")
		for _, k := range injectable {
			if !has(o.Inject, k) {
				continue
			}
			src.Spans[k] = b.add(faults.SnippetVariant(k, variant(k)))
		}
		b.add("    }\n")
	}

	b.add(`    /* residual reduction */
    resid[0] = rsd[0] + u[0];
    MPI_Allreduce(resid, total, 1, MPI_SUM, MPI_COMM_WORLD);
  }
`)

	// Verification.
	b.addf(`  /* verification */
  double vsum[1];
  vsum[0] = 0.0;
  for (int i = 0; i < %d; i++) { vsum[0] += u[i]; }
  double vtot[1];
  MPI_Reduce(vsum, vtot, 1, MPI_SUM, 0, MPI_COMM_WORLD);
  if (rank == 0) { printf("%s class %c verification %%f\n", vtot[0]); }
`, cells, bench, rune(o.Class))

	if regionFinalize {
		src.Spans[spec.FinalizationViolation] = b.add(faults.RegionFinalize)
	} else {
		b.add("  MPI_Finalize();\n")
	}
	b.add("  return 0;\n}\n")

	src.Text = b.sb.String()
	return src
}

// PaperInjections returns the injection configuration used by the
// Table I reproduction for each benchmark: all six kinds, with the
// per-benchmark variants that reproduce the paper's per-tool
// detection differences (see EXPERIMENTS.md).
func PaperInjections(bench Benchmark) Options {
	o := Options{
		Inject:   spec.AllKinds(),
		Variants: map[spec.Kind]faults.Variant{},
	}
	switch bench {
	case LU:
		// Marmot misses the schedule-skewed request violation;
		// ITC misses the probe-only violation (probe-blind).
		o.Variants[spec.ConcurrentRequestViolation] = faults.Variant{SkewUnits: 8000}
	case BT:
		// All six manifest promptly; the benign trap costs ITC a
		// false positive.
		o.Variants[spec.ProbeViolation] = faults.Variant{ProbeWithRecv: true}
		o.FPTrap = true
	case SP:
		// Marmot misses the schedule-skewed collective violation; the
		// probe site carries receives, so ITC still sees it.
		o.Variants[spec.ProbeViolation] = faults.Variant{ProbeWithRecv: true}
		o.Variants[spec.CollectiveCallViolation] = faults.Variant{SkewUnits: 8000}
	}
	return o
}

// Attribute classifies one reported violation against the injected
// spans: it returns the injected kind the report hits, or ok=false
// for a report outside every injected site (a false positive).
func (s *Source) Attribute(v spec.Violation) (spec.Kind, bool) {
	// Level violations attribute to the init injection by kind.
	if v.Kind == spec.InitializationViolation {
		_, ok := s.Spans[spec.InitializationViolation]
		return spec.InitializationViolation, ok
	}
	if v.Kind == spec.FinalizationViolation {
		_, ok := s.Spans[spec.FinalizationViolation]
		return spec.FinalizationViolation, ok
	}
	for kind, span := range s.Spans {
		for _, line := range v.Lines {
			if span.Contains(line) {
				return kind, true
			}
		}
	}
	return 0, false
}
