package npb

import (
	"strings"
	"testing"

	"home/internal/faults"
	"home/internal/interp"
	"home/internal/minic"
	"home/internal/spec"
)

func TestGenerateParses(t *testing.T) {
	for _, bench := range All() {
		for _, class := range []Class{'S', 'W', 'A', 'B', 'C'} {
			src := Generate(bench, Options{Class: class})
			if _, err := minic.Parse(src.Text); err != nil {
				t.Fatalf("%v class %c: %v\n%s", bench, class, err, numbered(src.Text))
			}
		}
	}
}

func TestGenerateWithAllInjectionsParses(t *testing.T) {
	for _, bench := range All() {
		o := PaperInjections(bench)
		o.Class = 'S'
		src := Generate(bench, o)
		if _, err := minic.Parse(src.Text); err != nil {
			t.Fatalf("%v: %v\n%s", bench, err, numbered(src.Text))
		}
		// All six kinds must have attribution spans.
		for _, k := range spec.AllKinds() {
			if _, ok := src.Spans[k]; !ok {
				t.Errorf("%v: no span for %v", bench, k)
			}
		}
	}
}

func TestCleanBenchmarksRunToCompletion(t *testing.T) {
	for _, bench := range All() {
		src := Generate(bench, Options{Class: 'S'})
		prog, err := minic.Parse(src.Text)
		if err != nil {
			t.Fatal(err)
		}
		res := interp.Run(prog, interp.Config{Procs: 2, Seed: 1})
		if err := res.FirstError(); err != nil {
			t.Fatalf("%v: %v\noutput: %s", bench, err, res.Output)
		}
		if res.Deadlocked {
			t.Fatalf("%v deadlocked", bench)
		}
		if !strings.Contains(res.Output, "verification") {
			t.Fatalf("%v produced no verification output: %q", bench, res.Output)
		}
	}
}

func TestInjectedBenchmarksRunToCompletion(t *testing.T) {
	for _, bench := range All() {
		o := PaperInjections(bench)
		o.Class = 'S'
		src := Generate(bench, o)
		prog, err := minic.Parse(src.Text)
		if err != nil {
			t.Fatal(err)
		}
		res := interp.Run(prog, interp.Config{Procs: 4, Seed: 2})
		if err := res.FirstError(); err != nil {
			t.Fatalf("%v: %v\noutput: %s", bench, err, res.Output)
		}
		if res.Deadlocked {
			t.Fatalf("%v deadlocked with injections", bench)
		}
	}
}

func TestClassScalingMonotonic(t *testing.T) {
	cS, uS, sS := classParams('S')
	cC, uC, sC := classParams('C')
	if cS >= cC || uS >= uC || sS >= sC {
		t.Fatalf("class scaling not monotonic: S=(%d,%d,%d) C=(%d,%d,%d)", cS, uS, sS, cC, uC, sC)
	}
}

func TestSpansPointAtInjectedText(t *testing.T) {
	o := PaperInjections(SP)
	o.Class = 'S'
	src := Generate(SP, o)
	lines := strings.Split(src.Text, "\n")
	for kind, span := range src.Spans {
		if kind == spec.InitializationViolation {
			if !strings.Contains(lines[span.First-1], "MPI_Init_thread") {
				t.Errorf("init span points at %q", lines[span.First-1])
			}
			continue
		}
		found := false
		for l := span.First; l <= span.Last && l <= len(lines); l++ {
			if strings.Contains(lines[l-1], "injected:") {
				found = true
			}
		}
		if !found {
			t.Errorf("%v span [%d,%d] has no injection marker", kind, span.First, span.Last)
		}
	}
}

func TestAttributeFalsePositive(t *testing.T) {
	src := Generate(BT, PaperInjections(BT))
	v := spec.Violation{Kind: spec.CollectiveCallViolation, Lines: []int{src.TrapSpan.First}}
	if _, ok := src.Attribute(v); ok {
		t.Fatal("trap-site report should not attribute to an injection")
	}
	v2 := spec.Violation{Kind: spec.ConcurrentRecvViolation,
		Lines: []int{src.Spans[spec.ConcurrentRecvViolation].First + 3}}
	kind, ok := src.Attribute(v2)
	if !ok || kind != spec.ConcurrentRecvViolation {
		t.Fatalf("attribution failed: %v %v", kind, ok)
	}
}

func TestInitLevelInjection(t *testing.T) {
	o := Options{Class: 'S', Inject: []spec.Kind{spec.InitializationViolation}}
	src := Generate(LU, o)
	if !strings.Contains(src.Text, "MPI_THREAD_FUNNELED") {
		t.Fatal("init injection did not change the declared level")
	}
	clean := Generate(LU, Options{Class: 'S'})
	if !strings.Contains(clean.Text, "MPI_THREAD_MULTIPLE") {
		t.Fatal("clean benchmark should declare MULTIPLE")
	}
}

func TestRegionFinalizeInjection(t *testing.T) {
	o := Options{Class: 'S', Inject: []spec.Kind{spec.FinalizationViolation}}
	src := Generate(LU, o)
	if strings.Contains(strings.Split(src.Text, "injected: finalization")[0], "MPI_Finalize();") {
		t.Fatal("normal finalize should be replaced")
	}
	if !strings.Contains(src.Text, faults.RegionFinalize[:30]) {
		t.Fatal("region finalize missing")
	}
}

// numbered renders source with line numbers for failure messages.
func numbered(src string) string {
	var b strings.Builder
	for i, l := range strings.Split(src, "\n") {
		b.WriteString(strings.TrimRight(strings.Repeat(" ", 0)+itoa(i+1)+": "+l, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
