package home_test

import (
	"fmt"

	"home"
)

// ExampleCheck runs the full HOME pipeline on the paper's Figure 2
// case study: both OpenMP threads receive with the same tag, so
// message delivery between them is nondeterministic.
func ExampleCheck() {
	src := `
int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  int rank = MPI_Comm_rank(MPI_COMM_WORLD);
  int tag = 0;
  double a[1];
  omp_set_num_threads(2);
  #pragma omp parallel for
  for (int j = 0; j < 2; j++) {
    if (rank == 0) {
      MPI_Send(a, 1, 1, tag, MPI_COMM_WORLD);
      MPI_Recv(a, 1, 1, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    if (rank == 1) {
      MPI_Recv(a, 1, 0, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(a, 1, 0, tag, MPI_COMM_WORLD);
    }
  }
  MPI_Finalize();
  return 0;
}`
	report, err := home.Check(src, home.Options{Procs: 2, Threads: 2, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, v := range report.Violations {
		fmt.Printf("%v on rank %d\n", v.Kind, v.Rank)
	}
	// Output:
	// ConcurrentRecvViolation on rank 0
	// ConcurrentRecvViolation on rank 1
}

// ExampleStaticOnly shows the compile-time phase: Algorithm 1 selects
// only the MPI calls inside omp parallel regions for instrumentation.
func ExampleStaticOnly() {
	src := `
int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  double a[1];
  MPI_Barrier(MPI_COMM_WORLD);
  #pragma omp parallel num_threads(2)
  {
    MPI_Send(a, 1, 0, omp_get_thread_num(), MPI_COMM_WORLD);
  }
  MPI_Finalize();
  return 0;
}`
	plan, err := home.StaticOnly(src, home.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d of %d MPI call sites instrumented\n", plan.Instrumented, plan.TotalMPICalls)
	for _, site := range plan.SiteList() {
		fmt.Println(site)
	}
	// Output:
	// 1 of 4 MPI call sites instrumented
	// MPI_Send at main:9
}
