package home_test

// Benchmarks regenerating the paper's evaluation, one per table and
// figure. Each reports, besides the usual time/op, the experiment's
// own metrics as custom units (virtual-time overhead percentages,
// detection counts), so `go test -bench` output doubles as the
// numbers recorded in EXPERIMENTS.md.
//
// The workload class and proc range default to the paper's setup
// scaled for a laptop; cmd/homebench exposes the same experiments
// with full knobs.

import (
	"testing"

	"home"
	"home/internal/baseline"
	"home/internal/harness"
	"home/internal/npb"
)

// benchCfg is the shared experiment configuration for the benches.
func benchCfg() harness.Config {
	return harness.Config{Class: 'A', Seed: 3, Procs: []int{2, 4, 8, 16, 32, 64}, TableProcs: 4}
}

// BenchmarkTable1 reproduces the detection-accuracy table (paper
// Table I: HOME 6/6/6, ITC 5/7/6, Marmot 5/6/5).
func BenchmarkTable1(b *testing.B) {
	var rows []harness.TableRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := r.Benchmark.String()
		b.ReportMetric(float64(r.Outcomes[baseline.ToolHOME].Reported), name+"-HOME")
		b.ReportMetric(float64(r.Outcomes[baseline.ToolITC].Reported), name+"-ITC")
		b.ReportMetric(float64(r.Outcomes[baseline.ToolMarmot].Reported), name+"-Marmot")
	}
}

// figureBench runs one execution-time figure and reports the 64-proc
// overheads as metrics.
func figureBench(b *testing.B, bench npb.Benchmark) {
	var fs *harness.FigureSeries
	for i := 0; i < b.N; i++ {
		var err error
		fs, err = harness.Figure(bench, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	maxProcs := 0
	for _, p := range fs.Points {
		if p.Procs > maxProcs {
			maxProcs = p.Procs
		}
	}
	for _, p := range fs.Points {
		if p.Procs == maxProcs && p.Tool != baseline.ToolBase {
			b.ReportMetric(p.OverheadPct, p.Tool.String()+"-ovh64-%")
		}
	}
}

// BenchmarkFig4LU reproduces Figure 4 (LU-MZ execution time,
// Base/HOME/Marmot/ITC over 2..64 procs).
func BenchmarkFig4LU(b *testing.B) { figureBench(b, npb.LU) }

// BenchmarkFig5BT reproduces Figure 5 (BT-MZ execution time).
func BenchmarkFig5BT(b *testing.B) { figureBench(b, npb.BT) }

// BenchmarkFig6SP reproduces Figure 6 (SP-MZ execution time).
func BenchmarkFig6SP(b *testing.B) { figureBench(b, npb.SP) }

// BenchmarkFig7Overhead reproduces Figure 7 (average overhead;
// paper: HOME 16-45%, Marmot 15-56%, ITC up to ~200%). The reported
// metrics are the curve endpoints.
func BenchmarkFig7Overhead(b *testing.B) {
	var pts []harness.OverheadPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.Figure7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	byTool := map[baseline.Tool][]float64{}
	for _, p := range pts {
		byTool[p.Tool] = append(byTool[p.Tool], p.OverheadPct)
	}
	for tool, curve := range byTool {
		b.ReportMetric(curve[0], tool.String()+"-ovh-min-%")
		b.ReportMetric(curve[len(curve)-1], tool.String()+"-ovh-max-%")
	}
}

// BenchmarkAblationStaticFiltering measures the design choice
// DESIGN.md calls out: HOME's selective monitoring vs instrumenting
// every MPI call.
func BenchmarkAblationStaticFiltering(b *testing.B) {
	var pts []harness.AblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.Ablation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.FilteredOverheadPct, "filtered-ovh64-%")
	b.ReportMetric(last.InstrumentAllOverheadPct, "all-ovh64-%")
}

// BenchmarkCheckFigure2 measures the end-to-end checking cost on the
// paper's Figure 2 case study (host time of the whole pipeline).
func BenchmarkCheckFigure2(b *testing.B) {
	src := `
int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  int rank = MPI_Comm_rank(MPI_COMM_WORLD);
  int tag = 0;
  double a[1];
  omp_set_num_threads(2);
  #pragma omp parallel for
  for (int j = 0; j < 2; j++) {
    if (rank == 0) {
      MPI_Send(a, 1, 1, tag, MPI_COMM_WORLD);
      MPI_Recv(a, 1, 1, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    if (rank == 1) {
      MPI_Recv(a, 1, 0, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(a, 1, 0, tag, MPI_COMM_WORLD);
    }
  }
  MPI_Finalize();
  return 0;
}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := home.Check(src, home.Options{Procs: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.HasViolation(home.ConcurrentRecvViolation) {
			b.Fatal("violation missed")
		}
	}
}
