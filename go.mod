module home

go 1.22
