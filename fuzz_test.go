package home

import (
	"bytes"
	"errors"
	"testing"

	"home/internal/faults"
	"home/internal/interp"
	"home/internal/mpi"
	"home/internal/omp"
	"home/internal/sched"
	"home/internal/spec"
)

// FuzzCheck drives the whole pipeline — parser, static analysis,
// instrumented execution on the simulated cluster, dynamic analyses,
// spec matching — on arbitrary source text with a chaos plan derived
// from the fuzzed seed. The contract under test is the robustness
// contract of docs/ROBUSTNESS.md: Check never panics, and every error
// it surfaces (returned or per-rank) is one of the documented typed
// errors.
func FuzzCheck(f *testing.F) {
	for _, kind := range AllViolationKinds() {
		f.Add(faults.Program(kind), int64(1))
	}
	f.Add(cleanHybrid, int64(3))
	f.Add(`int main() { MPI_Init(); MPI_Finalize(); return 0; }`, int64(0))
	f.Add(`int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  int rank = MPI_Comm_rank(MPI_COMM_WORLD);
  double b[1];
  if (rank == 0) { MPI_Recv(b, 1, 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE); }
  MPI_Barrier(MPI_COMM_WORLD);
  MPI_Finalize();
  return 0;
}`, int64(7)) // deadlocks: rank 0 receives a message nobody sends
	f.Add(`int x = ; #pragma omp`, int64(2)) // parse garbage
	f.Add(`int main() { while (1) { } return 0; }`, int64(5))

	f.Fuzz(func(t *testing.T, src string, seed int64) {
		opts := Options{
			Procs:         2,
			Threads:       2,
			Seed:          1,
			MaxSteps:      20_000,
			MaxArrayElems: 1 << 12,
		}
		if seed != 0 {
			if seed%3 == 0 {
				opts.Chaos = ChaosCrash(seed, int(seed)%opts.Procs, 2)
			} else {
				opts.Chaos = ChaosPerturb(seed)
			}
		}
		rep, err := Check(src, opts)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Check returned an undocumented error type %T: %v", err, err)
			}
			return
		}
		if rep == nil {
			t.Fatal("Check returned neither report nor error")
		}
		for rank, rerr := range rep.RunErrors {
			if rerr != nil && !documentedRunError(rerr) {
				t.Fatalf("rank %d surfaced an undocumented error type %T: %v", rank, rerr, rerr)
			}
		}
	})
}

// FuzzSchedBinary drives the schedule-stream reader — the v3 binary
// frame decoder and the JSONL fallback it sniffs against — on
// arbitrary bytes. The contract: Read never panics, every failure is
// a documented typed error (*sched.TruncatedError or a hard decode
// error), and a successfully decoded binary stream transcodes
// losslessly.
func FuzzSchedBinary(f *testing.F) {
	// Seed with a real recorded schedule in both containers, plus
	// truncated and corrupted variants of the binary form.
	rec := sched.NewRecorder()
	_, err := Check(faults.Program(spec.CollectiveCallViolation), Options{
		Procs: 2, Threads: 2, Seed: 1,
		Chaos:          ChaosPerturb(3),
		RecordSchedule: rec,
	})
	if err != nil {
		f.Fatalf("seed schedule: %v", err)
	}
	bin := rec.BytesBinary()
	jsonl := rec.Bytes()
	f.Add(bin)
	f.Add(jsonl)
	f.Add(bin[:len(bin)/2])
	f.Add(bin[:len(bin)-1])
	corrupt := append([]byte(nil), bin...)
	corrupt[len(corrupt)/2] ^= 0x80
	f.Add(corrupt)
	f.Add([]byte(sched.BinaryMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := sched.Read(bytes.NewReader(data))
		if err != nil {
			var te *sched.TruncatedError
			if errors.As(err, &te) {
				// The salvage contract: a TruncatedError always carries
				// a replayable prefix (the CLIs call methods on it).
				if s == nil {
					t.Fatalf("TruncatedError without a salvaged schedule: %v", err)
				}
				if te.Records < 0 {
					t.Fatalf("negative salvage count %d", te.Records)
				}
				return
			}
			if s != nil {
				t.Fatalf("schedule returned alongside hard error %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("Read returned neither schedule nor error")
		}
		if !sched.Binary(data) {
			// JSONL streams can carry fields outside their kind's
			// payload contract, which the binary container does not
			// preserve; the round-trip guarantee applies to canonical
			// streams (internal/difftest pins those), not fuzzed ones.
			return
		}
		// A decoded binary stream is canonical by construction: both
		// re-encodes must reproduce it exactly.
		rebin, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("binary-decoded schedule failed to re-encode: %v", err)
		}
		s2, rerr := sched.Read(bytes.NewReader(rebin))
		if rerr != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", rerr)
		}
		j1, err1 := s.MarshalJSONL()
		j2, err2 := s2.MarshalJSONL()
		if err1 != nil || err2 != nil {
			t.Fatalf("jsonl re-encode: %v / %v", err1, err2)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("binary round trip diverged:\n got %q\nwant %q", j2, j1)
		}
	})
}

// documentedRunError reports whether a per-rank error from a Check run
// belongs to the documented inventory (docs/ROBUSTNESS.md).
func documentedRunError(err error) bool {
	var runtimeErr *interp.RuntimeError
	var rankErr *mpi.RankFailureError
	switch {
	case errors.As(err, &runtimeErr),
		errors.As(err, &rankErr),
		errors.Is(err, interp.ErrStepBudget),
		errors.Is(err, mpi.ErrDeadlock),
		errors.Is(err, mpi.ErrRankFailed),
		errors.Is(err, mpi.ErrNotInitialized),
		errors.Is(err, mpi.ErrFinalized),
		errors.Is(err, mpi.ErrInvalidRank),
		errors.Is(err, mpi.ErrInvalidComm),
		errors.Is(err, mpi.ErrRequestReused),
		errors.Is(err, mpi.ErrDoubleInit),
		errors.Is(err, mpi.ErrWindowBounds),
		errors.Is(err, omp.ErrDeadlock),
		errors.Is(err, omp.ErrRankAborted):
		return true
	}
	return false
}
