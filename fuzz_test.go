package home

import (
	"errors"
	"testing"

	"home/internal/faults"
	"home/internal/interp"
	"home/internal/mpi"
	"home/internal/omp"
)

// FuzzCheck drives the whole pipeline — parser, static analysis,
// instrumented execution on the simulated cluster, dynamic analyses,
// spec matching — on arbitrary source text with a chaos plan derived
// from the fuzzed seed. The contract under test is the robustness
// contract of docs/ROBUSTNESS.md: Check never panics, and every error
// it surfaces (returned or per-rank) is one of the documented typed
// errors.
func FuzzCheck(f *testing.F) {
	for _, kind := range AllViolationKinds() {
		f.Add(faults.Program(kind), int64(1))
	}
	f.Add(cleanHybrid, int64(3))
	f.Add(`int main() { MPI_Init(); MPI_Finalize(); return 0; }`, int64(0))
	f.Add(`int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  int rank = MPI_Comm_rank(MPI_COMM_WORLD);
  double b[1];
  if (rank == 0) { MPI_Recv(b, 1, 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE); }
  MPI_Barrier(MPI_COMM_WORLD);
  MPI_Finalize();
  return 0;
}`, int64(7)) // deadlocks: rank 0 receives a message nobody sends
	f.Add(`int x = ; #pragma omp`, int64(2)) // parse garbage
	f.Add(`int main() { while (1) { } return 0; }`, int64(5))

	f.Fuzz(func(t *testing.T, src string, seed int64) {
		opts := Options{
			Procs:         2,
			Threads:       2,
			Seed:          1,
			MaxSteps:      20_000,
			MaxArrayElems: 1 << 12,
		}
		if seed != 0 {
			if seed%3 == 0 {
				opts.Chaos = ChaosCrash(seed, int(seed)%opts.Procs, 2)
			} else {
				opts.Chaos = ChaosPerturb(seed)
			}
		}
		rep, err := Check(src, opts)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Check returned an undocumented error type %T: %v", err, err)
			}
			return
		}
		if rep == nil {
			t.Fatal("Check returned neither report nor error")
		}
		for rank, rerr := range rep.RunErrors {
			if rerr != nil && !documentedRunError(rerr) {
				t.Fatalf("rank %d surfaced an undocumented error type %T: %v", rank, rerr, rerr)
			}
		}
	})
}

// documentedRunError reports whether a per-rank error from a Check run
// belongs to the documented inventory (docs/ROBUSTNESS.md).
func documentedRunError(err error) bool {
	var runtimeErr *interp.RuntimeError
	var rankErr *mpi.RankFailureError
	switch {
	case errors.As(err, &runtimeErr),
		errors.As(err, &rankErr),
		errors.Is(err, interp.ErrStepBudget),
		errors.Is(err, mpi.ErrDeadlock),
		errors.Is(err, mpi.ErrRankFailed),
		errors.Is(err, mpi.ErrNotInitialized),
		errors.Is(err, mpi.ErrFinalized),
		errors.Is(err, mpi.ErrInvalidRank),
		errors.Is(err, mpi.ErrInvalidComm),
		errors.Is(err, mpi.ErrRequestReused),
		errors.Is(err, mpi.ErrDoubleInit),
		errors.Is(err, mpi.ErrWindowBounds),
		errors.Is(err, omp.ErrDeadlock),
		errors.Is(err, omp.ErrRankAborted):
		return true
	}
	return false
}
