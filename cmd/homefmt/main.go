// Command homefmt formats MiniHPC source files in the canonical style
// of the repository's printer (the gofmt of MiniHPC).
//
// Usage:
//
//	homefmt file.c          # print the formatted source to stdout
//	homefmt -w file.c ...   # rewrite files in place
//	homefmt -l file.c ...   # list files whose formatting differs
package main

import (
	"os"

	"home/internal/cli"
)

func main() {
	os.Exit(cli.HomeFmt(os.Args[1:], os.Stdout, os.Stderr))
}
