// Command hometrace records and replays instrumentation traces,
// supporting the offline analysis mode the paper describes ("the
// observed events can be online analysis (i.e., during executions) or
// offline (i.e., after executions terminate)").
//
// Usage:
//
//	hometrace record [-procs N] [-all] [-spans out.json] program.c > trace.jsonl
//	hometrace analyze [-mode combined|lockset|hb] [-ignore-locks] trace.jsonl
//	hometrace replay [-procs N] [-threads N] [-seed S] sched.jsonl program.c
//	hometrace timeline [-o out.json] trace.jsonl
//	hometrace timeline [-procs N] [-threads N] [-seed S] [-o out.json] sched.jsonl program.c
//	hometrace report [-format md|json] corpus.jsonl
//
// record executes the program with HOME's instrumentation and writes
// the event stream as newline-delimited JSON; -spans additionally
// profiles the recorder's phases as Chrome trace_event JSON (see
// docs/OBSERVABILITY.md). analyze re-runs the dynamic analyses and
// the specification matcher over a saved stream — so one recorded
// execution can be examined under different analysis configurations
// without re-running the program. replay re-checks a program while
// forcing a fault schedule recorded by homecheck -record-sched,
// reproducing the recorded report exactly (see docs/ROBUSTNESS.md).
// timeline renders a run as one Chrome trace_event lane per (rank,
// thread) in virtual time — from a recorded event trace or by
// replaying a recorded fault schedule — with causal-witness markers
// overlaid on every verdict site; open the output in chrome://tracing
// or ui.perfetto.dev (see docs/OBSERVABILITY.md). report aggregates a
// run corpus written by homebench -corpus into a per-(program, plan,
// verdict) fleet report with merged stats and corpus-wide
// schedule-space coverage, as markdown or JSON.
package main

import (
	"os"

	"home/internal/cli"
)

func main() {
	os.Exit(cli.HomeTrace(os.Args[1:], os.Stdout, os.Stderr))
}
