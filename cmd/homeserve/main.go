// Command homeserve is the long-lived checking daemon: HTTP/JSON job
// intake, a bounded worker pool with per-job budgets, a compiled-
// program artifact cache, and live SSE introspection on the same
// listener. See docs/SERVING.md.
package main

import (
	"os"

	"home/internal/cli"
)

func main() {
	os.Exit(cli.HomeServe(os.Args[1:], os.Stdout, os.Stderr))
}
