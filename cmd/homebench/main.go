// Command homebench regenerates the paper's evaluation: the
// detection-accuracy table (Table I), the per-benchmark execution-time
// figures (Figures 4-6), the average-overhead figure (Figure 7), and
// the static-filter ablation described in DESIGN.md.
//
// Usage:
//
//	homebench -exp all                # everything (the default)
//	homebench -exp table1
//	homebench -exp fig4|fig5|fig6|fig7
//	homebench -exp ablation
//	homebench -exp fig7 -class C      # heavier workload
//	homebench -exp chaos              # fault-injection soak (docs/ROBUSTNESS.md)
//	homebench -exp table1 -json out.json   # machine-readable results
//	homebench -baseline BENCH_NPB.json     # write a fresh perf baseline
//	homebench -compare BENCH_NPB.json      # gate against the committed baseline
//	homebench -exp chaos -corpus soak.jsonl  # export the soak's run corpus
//
// With -json, the experiments that ran are also written to the given
// file as one JSON document, and every HOME run carries its runtime
// statistics and the uniform per-run shape (makespan, events,
// per-rank coverage, phase spans; see docs/OBSERVABILITY.md).
//
// -baseline/-compare implement the perf-baseline workflow: -baseline
// measures the NPB matrix and writes a schema-versioned baseline
// file; -compare re-measures under the baseline's own header config
// and exits non-zero if any gated (virtual, deterministic) metric
// drifts beyond -tolerance. Wall-clock metrics are advisory only.
// -corpus writes one labeled (stats, coverage) line per chaos-soak
// run; render it with `hometrace report`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"home/internal/harness"
	"home/internal/npb"
	"home/internal/obs"
	"home/internal/obs/live"
	"home/internal/serve"
)

// output is the -json document: one field per experiment, populated
// only for the experiments that ran.
type output struct {
	Class       string                  `json:"class"`
	Seed        int64                   `json:"seed"`
	Threads     int                     `json:"threads"`
	Procs       []int                   `json:"procs"`
	Table1      []harness.TableRow      `json:"table1,omitempty"`
	Figures     []*harness.FigureSeries `json:"figures,omitempty"`
	Figure7     []harness.OverheadPoint `json:"figure7,omitempty"`
	Scalability []harness.ScalePoint    `json:"scalability,omitempty"`
	Ablation    []harness.AblationPoint `json:"ablation,omitempty"`
	Chaos       *harness.ChaosReport    `json:"chaos,omitempty"`
	Explore     *harness.ExploreReport  `json:"explore,omitempty"`
	Bench       *harness.BenchBaseline  `json:"bench,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig4, fig5, fig6, fig7, ablation, scale, chaos, explore, bench")
	class := flag.String("class", "A", "workload class: S, W, A, B, C")
	seed := flag.Int64("seed", 3, "simulation seed")
	procsFlag := flag.String("procs", "2,4,8,16,32,64", "comma-separated process counts for the figures")
	threads := flag.Int("threads", 2, "OpenMP threads per rank")
	jsonOut := flag.String("json", "", "also write machine-readable results (with per-run stats) to this file")
	baseline := flag.String("baseline", "", "measure the NPB bench matrix and write a perf baseline to this file")
	compare := flag.String("compare", "", "re-measure under this baseline's header config and fail on gated-metric drift")
	tolerance := flag.Float64("tolerance", 0.02, "relative tolerance for -compare gated metrics")
	corpus := flag.String("corpus", "", "with -exp chaos/explore: write one labeled (stats, coverage) JSONL line per run to this file")
	exploreBudget := flag.Int("explore-budget", 16, "with -exp explore: mutants to try per corpus kind")
	introspect := flag.String("introspect", "", "serve live HTTP/SSE introspection on this address, e.g. 127.0.0.1:8090 (see docs/OBSERVABILITY.md)")
	introspectHold := flag.Duration("introspect-hold", 0, "with -introspect: keep serving for this long after the experiments finish (SSE subscribers get the backlog replayed)")
	flag.Parse()

	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "homebench: bad -procs entry %q\n", f)
			os.Exit(2)
		}
		procs = append(procs, n)
	}
	cfg := harness.Config{
		Class:        npb.Class((*class)[0]),
		Seed:         *seed,
		Procs:        procs,
		Threads:      *threads,
		CollectStats: *jsonOut != "" || *corpus != "",
		// One artifact cache across every experiment in the invocation:
		// `-exp all` revisits the same generated workloads repeatedly
		// (Figure 7 reruns the per-benchmark figures, the ablation reuses
		// LU), so the front-end runs once per distinct source.
		Cache: serve.NewCache(0, obs.NewRegistry()),
	}
	// The telemetry plane feeds both the -introspect HTTP/SSE server
	// and the TTY progress ticker; the long campaign experiments
	// (chaos, explore) register every run on it. One plane per process.
	wantTicker := tickerWanted()
	if *introspect != "" || wantTicker {
		cfg.Live = live.NewPlane()
	}
	if *introspect != "" {
		srv, err := live.Serve(*introspect, cfg.Live)
		if err != nil {
			fmt.Fprintf(os.Stderr, "homebench: %v\n", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "introspect: serving on %s\n", srv.Addr())
	}
	if wantTicker {
		stop := startTicker(cfg.Live)
		defer stop()
	}
	out := output{Class: *class, Seed: *seed, Threads: *threads, Procs: procs}

	// -baseline/-compare imply the bench experiment: `homebench
	// -compare BENCH_NPB.json` is the whole CI gate invocation.
	if *exp == "all" && (*baseline != "" || *compare != "") {
		*exp = "bench"
	}

	run := func(name string, f func() error) {
		// "scale" goes past 64 ranks, "chaos" injects faults, "explore"
		// mutates schedules, and "bench" measures its own canonical
		// matrix; all are opt-in.
		if *exp != name && (*exp != "all" || name == "scale" || name == "chaos" || name == "explore" || name == "bench") {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "homebench %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		rows, err := harness.Table1(cfg)
		if err != nil {
			return err
		}
		out.Table1 = rows
		fmt.Println("== Table I: violations detected (6 injected per benchmark) ==")
		fmt.Print(harness.RenderTable1(rows))
		fmt.Println()
		return nil
	})
	figures := []struct {
		name  string
		bench npb.Benchmark
		num   int
	}{
		{"fig4", npb.LU, 4},
		{"fig5", npb.BT, 5},
		{"fig6", npb.SP, 6},
	}
	for _, fig := range figures {
		fig := fig
		run(fig.name, func() error {
			fs, err := harness.Figure(fig.bench, cfg)
			if err != nil {
				return err
			}
			out.Figures = append(out.Figures, fs)
			fmt.Printf("== Figure %d: %s ==\n", fig.num, fig.bench)
			fmt.Print(harness.RenderFigure(fs))
			fmt.Println(harness.Chart(fs))
			return nil
		})
	}
	run("fig7", func() error {
		pts, err := harness.Figure7(cfg)
		if err != nil {
			return err
		}
		out.Figure7 = pts
		fmt.Println("== Figure 7: overhead ==")
		fmt.Print(harness.RenderFigure7(pts))
		fmt.Println(harness.OverheadChart(pts))
		return nil
	})
	run("scale", func() error {
		pts, err := harness.Scalability(cfg, nil)
		if err != nil {
			return err
		}
		out.Scalability = pts
		fmt.Println("== Scalability: HOME beyond the paper's 64 processes ==")
		fmt.Print(harness.RenderScalability(pts))
		fmt.Println()
		return nil
	})
	run("chaos", func() error {
		rep, err := harness.ChaosSoak(cfg, nil)
		if err != nil {
			return err
		}
		out.Chaos = rep
		fmt.Println("== Chaos soak: seeded fault plans over the violation corpus ==")
		fmt.Print(harness.RenderChaos(rep))
		fmt.Println()
		if *corpus != "" {
			if err := harness.WriteCorpusFile(*corpus, rep.CorpusRuns()); err != nil {
				return err
			}
			fmt.Printf("corpus: %d runs written to %s (render with `hometrace report`)\n\n", len(rep.Outcomes), *corpus)
		}
		if !rep.OK() {
			return fmt.Errorf("chaos contract failed (%d violations)", len(rep.Failures))
		}
		return nil
	})
	run("explore", func() error {
		rep, err := harness.RunExplore(cfg, *exploreBudget)
		if err != nil {
			return err
		}
		out.Explore = rep
		fmt.Println("== Schedule-space exploration: mutation campaigns over the violation corpus ==")
		fmt.Print(harness.RenderExplore(rep))
		fmt.Println()
		if *corpus != "" {
			if err := harness.WriteCorpusFile(*corpus, rep.CorpusRuns()); err != nil {
				return err
			}
			fmt.Printf("corpus: %d campaigns written to %s (render with `hometrace report`)\n\n", len(rep.Cells), *corpus)
		}
		return nil
	})
	run("bench", func() error {
		// The bench matrix is fixed by DefaultBenchConfig (or, with
		// -compare, by the baseline's own header) so the committed
		// artifact is reproducible regardless of the figure flags.
		benchCfg := harness.DefaultBenchConfig()
		var base *harness.BenchBaseline
		if *compare != "" {
			var err error
			base, err = harness.ReadBenchFile(*compare)
			if err != nil {
				return err
			}
			benchCfg = base.BenchConfig()
		}
		fresh, err := harness.RunBench(benchCfg)
		if err != nil {
			return err
		}
		out.Bench = fresh
		fmt.Println("== NPB perf bench ==")
		fmt.Print(harness.RenderBench(fresh))
		if *baseline != "" {
			if err := harness.WriteBenchFile(*baseline, fresh); err != nil {
				return err
			}
			fmt.Printf("baseline written to %s\n", *baseline)
		}
		if base != nil {
			fmt.Print(harness.RenderBenchRatios(base, fresh))
			if fails := harness.CompareBench(base, fresh, *tolerance); len(fails) != 0 {
				return fmt.Errorf("perf regression vs %s:\n  %s", *compare, strings.Join(fails, "\n  "))
			}
			fmt.Printf("gated metrics within %.1f%% of %s\n", 100**tolerance, *compare)
		}
		fmt.Println()
		return nil
	})
	run("ablation", func() error {
		pts, err := harness.Ablation(cfg)
		if err != nil {
			return err
		}
		out.Ablation = pts
		fmt.Println("== Ablation: value of the static filter ==")
		fmt.Print(harness.RenderAblation(pts))
		fmt.Println()
		return nil
	})

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, &out); err != nil {
			fmt.Fprintf(os.Stderr, "homebench: %v\n", err)
			os.Exit(1)
		}
	}

	if hits, misses := cfg.Cache.HitsMisses(); hits+misses > 0 {
		fmt.Fprintf(os.Stderr, "front-end cache: %d hits, %d misses\n", hits, misses)
	}

	// Hold the introspection server open so probes (CI smoke, a human
	// with curl) can inspect the finished campaign before exit.
	if *introspect != "" && *introspectHold > 0 {
		fmt.Fprintf(os.Stderr, "introspect: holding for %s\n", *introspectHold)
		time.Sleep(*introspectHold)
	}
}

// tickerWanted reports whether the live progress ticker should run:
// only when stderr is attached to a terminal, so redirected or CI
// output stays clean.
func tickerWanted() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// startTicker prints a single-line live progress ticker to stderr
// twice a second, sourced from the same plane the HTTP server reads:
// runs done (vs expected when a campaign declared a total) and event
// throughput. Returns a stop function that clears the line.
func startTicker(plane *live.Plane) func() {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		start := time.Now()
		var lastEvents int64
		var lastAt = start
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				runs, expected, events := plane.Progress()
				if runs == 0 && events == 0 {
					continue
				}
				rate := float64(events-lastEvents) / now.Sub(lastAt).Seconds()
				lastEvents, lastAt = events, now
				total := "?"
				if expected > 0 {
					total = fmt.Sprintf("%d", expected)
				}
				fmt.Fprintf(os.Stderr, "\r\x1b[K%d/%s runs  %.0f events/s  %s elapsed",
					runs, total, rate, time.Since(start).Truncate(time.Second))
			}
		}
	}()
	return func() {
		close(done)
		fmt.Fprint(os.Stderr, "\r\x1b[K")
	}
}

func writeJSON(path string, out *output) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
