// Command homebench regenerates the paper's evaluation: the
// detection-accuracy table (Table I), the per-benchmark execution-time
// figures (Figures 4-6), the average-overhead figure (Figure 7), and
// the static-filter ablation described in DESIGN.md.
//
// Usage:
//
//	homebench -exp all                # everything (the default)
//	homebench -exp table1
//	homebench -exp fig4|fig5|fig6|fig7
//	homebench -exp ablation
//	homebench -exp fig7 -class C      # heavier workload
//	homebench -exp chaos              # fault-injection soak (docs/ROBUSTNESS.md)
//	homebench -exp table1 -json out.json   # machine-readable results
//
// With -json, the experiments that ran are also written to the given
// file as one JSON document, and every HOME run carries its runtime
// statistics (see docs/OBSERVABILITY.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"home/internal/harness"
	"home/internal/npb"
)

// output is the -json document: one field per experiment, populated
// only for the experiments that ran.
type output struct {
	Class       string                  `json:"class"`
	Seed        int64                   `json:"seed"`
	Threads     int                     `json:"threads"`
	Procs       []int                   `json:"procs"`
	Table1      []harness.TableRow      `json:"table1,omitempty"`
	Figures     []*harness.FigureSeries `json:"figures,omitempty"`
	Figure7     []harness.OverheadPoint `json:"figure7,omitempty"`
	Scalability []harness.ScalePoint    `json:"scalability,omitempty"`
	Ablation    []harness.AblationPoint `json:"ablation,omitempty"`
	Chaos       *harness.ChaosReport    `json:"chaos,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig4, fig5, fig6, fig7, ablation, scale, chaos")
	class := flag.String("class", "A", "workload class: S, W, A, B, C")
	seed := flag.Int64("seed", 3, "simulation seed")
	procsFlag := flag.String("procs", "2,4,8,16,32,64", "comma-separated process counts for the figures")
	threads := flag.Int("threads", 2, "OpenMP threads per rank")
	jsonOut := flag.String("json", "", "also write machine-readable results (with per-run stats) to this file")
	flag.Parse()

	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "homebench: bad -procs entry %q\n", f)
			os.Exit(2)
		}
		procs = append(procs, n)
	}
	cfg := harness.Config{
		Class:        npb.Class((*class)[0]),
		Seed:         *seed,
		Procs:        procs,
		Threads:      *threads,
		CollectStats: *jsonOut != "",
	}
	out := output{Class: *class, Seed: *seed, Threads: *threads, Procs: procs}

	run := func(name string, f func() error) {
		// "scale" goes past 64 ranks and "chaos" injects faults; both
		// are opt-in.
		if *exp != name && (*exp != "all" || name == "scale" || name == "chaos") {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "homebench %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		rows, err := harness.Table1(cfg)
		if err != nil {
			return err
		}
		out.Table1 = rows
		fmt.Println("== Table I: violations detected (6 injected per benchmark) ==")
		fmt.Print(harness.RenderTable1(rows))
		fmt.Println()
		return nil
	})
	figures := []struct {
		name  string
		bench npb.Benchmark
		num   int
	}{
		{"fig4", npb.LU, 4},
		{"fig5", npb.BT, 5},
		{"fig6", npb.SP, 6},
	}
	for _, fig := range figures {
		fig := fig
		run(fig.name, func() error {
			fs, err := harness.Figure(fig.bench, cfg)
			if err != nil {
				return err
			}
			out.Figures = append(out.Figures, fs)
			fmt.Printf("== Figure %d: %s ==\n", fig.num, fig.bench)
			fmt.Print(harness.RenderFigure(fs))
			fmt.Println(harness.Chart(fs))
			return nil
		})
	}
	run("fig7", func() error {
		pts, err := harness.Figure7(cfg)
		if err != nil {
			return err
		}
		out.Figure7 = pts
		fmt.Println("== Figure 7: overhead ==")
		fmt.Print(harness.RenderFigure7(pts))
		fmt.Println(harness.OverheadChart(pts))
		return nil
	})
	run("scale", func() error {
		pts, err := harness.Scalability(cfg, nil)
		if err != nil {
			return err
		}
		out.Scalability = pts
		fmt.Println("== Scalability: HOME beyond the paper's 64 processes ==")
		fmt.Print(harness.RenderScalability(pts))
		fmt.Println()
		return nil
	})
	run("chaos", func() error {
		rep, err := harness.ChaosSoak(cfg, nil)
		if err != nil {
			return err
		}
		out.Chaos = rep
		fmt.Println("== Chaos soak: seeded fault plans over the violation corpus ==")
		fmt.Print(harness.RenderChaos(rep))
		fmt.Println()
		if !rep.OK() {
			return fmt.Errorf("chaos contract failed (%d violations)", len(rep.Failures))
		}
		return nil
	})
	run("ablation", func() error {
		pts, err := harness.Ablation(cfg)
		if err != nil {
			return err
		}
		out.Ablation = pts
		fmt.Println("== Ablation: value of the static filter ==")
		fmt.Print(harness.RenderAblation(pts))
		fmt.Println()
		return nil
	})

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, &out); err != nil {
			fmt.Fprintf(os.Stderr, "homebench: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeJSON(path string, out *output) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
