// Command homerun executes a MiniHPC hybrid MPI/OpenMP program on the
// simulated cluster without any checking — useful for trying programs
// out and for timing baselines.
//
// Usage:
//
//	homerun [flags] program.c
//
// The program's print output goes to stdout; the virtual makespan,
// deadlock wait-for snapshots and per-rank errors go to stderr.
package main

import (
	"os"

	"home/internal/cli"
)

func main() {
	os.Exit(cli.HomeRun(os.Args[1:], os.Stdout, os.Stderr))
}
