// Command homecheck runs the HOME thread-safety checker on a MiniHPC
// hybrid MPI/OpenMP source file.
//
// Usage:
//
//	homecheck [flags] program.c
//
// Exit status is 0 when no violations are found, 1 when violations
// are reported, and 2 on usage or program errors.
//
// Examples:
//
//	homecheck -procs 4 app.c
//	homecheck -static app.c            # static phase only (plan + warnings)
//	homecheck -cfg app.c               # dump the CFGs in Graphviz dot
//	homecheck -all -procs 8 app.c      # disable the static filter
//	homecheck -stats app.c             # print runtime counters
//	homecheck -spans spans.json app.c  # phase spans as Chrome trace JSON
//	homecheck -chaos seed=3 app.c      # check under injected fault schedules
//	homecheck -chaos seed=3,crash=1@5 app.c   # crash-stop rank 1 at its 5th call
//	homecheck -chaos seed=3 -record-sched s.jsonl app.c  # record the realized schedule
//	homecheck -replay-sched s.jsonl app.c     # force the recorded interleaving
//	homecheck -explain app.c           # causal witness for every verdict
//	homecheck -explain-json app.c      # the same witnesses as JSON
//
// See docs/OBSERVABILITY.md for the -stats, -spans and -explain
// output and docs/ROBUSTNESS.md for the -chaos plan syntax and the
// schedule record/replay format.
package main

import (
	"os"

	"home/internal/cli"
)

func main() {
	os.Exit(cli.HomeCheck(os.Args[1:], os.Stdout, os.Stderr))
}
