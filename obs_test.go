package home

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"home/internal/mpi"
)

// TestCheckStatsPopulated is the ISSUE acceptance test: a hybrid run
// with a Stats registry yields non-empty counters from every layer
// (mpi, omp, detect, interp).
func TestCheckStatsPopulated(t *testing.T) {
	reg := NewStatsRegistry()
	rep, err := Check(cleanHybrid, Options{Procs: 2, Seed: 1, Stats: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats == nil {
		t.Fatal("Report.Stats is nil despite Options.Stats")
	}
	for _, name := range []string{
		"mpi.sends", "mpi.bytes_moved", "mpi.msgs_matched", "mpi.collective_rounds",
		"omp.parallel_regions",
		"interp.statements",
		"detect.events", "detect.vc_comparisons",
	} {
		if v := rep.Stats.Get(name); v <= 0 {
			t.Errorf("counter %s = %d, want > 0\nstats:\n%s", name, v, rep.Stats.String())
		}
	}
	// Builtin-call mix: the program issues sends, so the interpreter
	// should have counted MPI_Send calls.
	if v := rep.Stats.Get("interp.call.MPI_Send"); v <= 0 {
		t.Errorf("interp.call.MPI_Send = %d, want > 0", v)
	}
	// No stats requested -> no snapshot, and the run still works.
	rep2, err := Check(cleanHybrid, Options{Procs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats != nil {
		t.Fatal("Report.Stats non-nil without Options.Stats")
	}
}

// statsInvariantSrc is constructed so every statistic is fixed by the
// program structure, not the host schedule: one rank sending to
// itself sequentially, then a symmetric two-thread region where both
// threads do identical critical/barrier work.
const statsInvariantSrc = `
int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  double buf[2];
  MPI_Send(buf, 2, 0, 9, MPI_COMM_WORLD);
  MPI_Recv(buf, 2, 0, 9, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  int sum = 0;
  #pragma omp parallel num_threads(2)
  {
    #pragma omp critical
    { sum = sum + 1; }
    #pragma omp barrier
    #pragma omp critical
    { sum = sum + 1; }
  }
  MPI_Finalize();
  return 0;
}`

// TestCheckStatsDeterministic is the ISSUE acceptance test: identical
// seeds produce identical stats snapshots.
func TestCheckStatsDeterministic(t *testing.T) {
	run := func() StatsSnapshot {
		t.Helper()
		reg := NewStatsRegistry()
		if _, err := Check(statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 11, Stats: reg}); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	first := run()
	// Two threads each entering two critical sections.
	if v := first.Get("omp.lock_acquires"); v != 4 {
		t.Errorf("omp.lock_acquires = %d, want 4", v)
	}
	for i := 0; i < 4; i++ {
		got := run()
		if !first.Equal(got) {
			t.Fatalf("run %d stats differ:\n--- first\n%s\n--- got\n%s", i+1, first.String(), got.String())
		}
	}
}

// TestCheckPhaseSpans is the ISSUE acceptance test for the profile:
// one span per pipeline phase, and a valid Chrome trace export.
func TestCheckPhaseSpans(t *testing.T) {
	prof := NewProfile()
	rep, err := Check(cleanHybrid, Options{Procs: 2, Seed: 1, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, sp := range rep.Spans {
		names = append(names, sp.Name)
	}
	want := "parse,static,instrument,execute,analyze,match"
	if strings.Join(names, ",") != want {
		t.Fatalf("spans = %v, want %s", names, want)
	}
	for _, sp := range rep.Spans {
		if sp.Name == "execute" && sp.VirtualNs != rep.Makespan {
			t.Errorf("execute span virtualNs = %d, want makespan %d", sp.VirtualNs, rep.Makespan)
		}
	}
	var buf bytes.Buffer
	if err := prof.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(rep.Spans) {
		t.Fatalf("trace has %d events, want %d", len(doc.TraceEvents), len(rep.Spans))
	}
}

// TestCheckDeadlockBlockedTable exercises the enriched deadlock error
// end to end: the structured per-rank table must be retrievable with
// errors.As from a deadlocking run.
func TestCheckDeadlockBlockedTable(t *testing.T) {
	const deadlockSrc = `
int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  double buf[1];
  MPI_Recv(buf, 1, MPI_ANY_SOURCE, 3, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  MPI_Finalize();
  return 0;
}`
	prog, err := Parse(deadlockSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBase(prog, Options{Procs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected a deadlock")
	}
	var found bool
	for _, e := range res.Errs {
		var de *mpi.DeadlockError
		if errors.As(e, &de) {
			found = true
			if len(de.Ops) == 0 {
				t.Fatal("DeadlockError has empty blocked-op table")
			}
			// The blocking receive surfaces as the MPI_Wait it is
			// implemented with, carrying the receive's selector.
			op := de.Ops[0]
			if op.Rank != 0 || op.Op != "MPI_Wait" {
				t.Errorf("blocked op = %+v, want rank 0 in MPI_Wait", op)
			}
			if !strings.Contains(e.Error(), "MPI_ANY_SOURCE") {
				t.Errorf("error text should render the wildcard source: %s", e.Error())
			}
		}
	}
	if !found {
		t.Fatalf("no DeadlockError among run errors: %v", res.Errs)
	}
}
