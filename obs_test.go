package home

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"home/internal/mpi"
	"home/internal/obs"
	"home/internal/obs/live"
)

// TestCheckStatsPopulated is the ISSUE acceptance test: a hybrid run
// with a Stats registry yields non-empty counters from every layer
// (mpi, omp, detect, interp).
func TestCheckStatsPopulated(t *testing.T) {
	reg := NewStatsRegistry()
	rep, err := Check(cleanHybrid, Options{Procs: 2, Seed: 1, Stats: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats == nil {
		t.Fatal("Report.Stats is nil despite Options.Stats")
	}
	for _, name := range []string{
		"mpi.sends", "mpi.bytes_moved", "mpi.msgs_matched", "mpi.collective_rounds",
		"omp.parallel_regions",
		"interp.statements",
		"detect.events", "detect.vc_comparisons",
	} {
		if v := rep.Stats.Get(name); v <= 0 {
			t.Errorf("counter %s = %d, want > 0\nstats:\n%s", name, v, rep.Stats.String())
		}
	}
	// Builtin-call mix: the program issues sends, so the interpreter
	// should have counted MPI_Send calls.
	if v := rep.Stats.Get("interp.call.MPI_Send"); v <= 0 {
		t.Errorf("interp.call.MPI_Send = %d, want > 0", v)
	}
	// No stats requested -> no snapshot, and the run still works.
	rep2, err := Check(cleanHybrid, Options{Procs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats != nil {
		t.Fatal("Report.Stats non-nil without Options.Stats")
	}
}

// statsInvariantSrc is constructed so every statistic is fixed by the
// program structure, not the host schedule: one rank sending to
// itself sequentially, then a symmetric two-thread region where both
// threads do identical critical/barrier work.
const statsInvariantSrc = `
int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  double buf[2];
  MPI_Send(buf, 2, 0, 9, MPI_COMM_WORLD);
  MPI_Recv(buf, 2, 0, 9, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  int sum = 0;
  #pragma omp parallel num_threads(2)
  {
    #pragma omp critical
    { sum = sum + 1; }
    #pragma omp barrier
    #pragma omp critical
    { sum = sum + 1; }
  }
  MPI_Finalize();
  return 0;
}`

// TestCheckStatsDeterministic is the ISSUE acceptance test: identical
// seeds produce identical stats snapshots.
func TestCheckStatsDeterministic(t *testing.T) {
	run := func() StatsSnapshot {
		t.Helper()
		reg := NewStatsRegistry()
		if _, err := Check(statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 11, Stats: reg}); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	first := run()
	// Two threads each entering two critical sections.
	if v := first.Get("omp.lock_acquires"); v != 4 {
		t.Errorf("omp.lock_acquires = %d, want 4", v)
	}
	for i := 0; i < 4; i++ {
		got := run()
		if !first.Equal(got) {
			t.Fatalf("run %d stats differ:\n--- first\n%s\n--- got\n%s", i+1, first.String(), got.String())
		}
	}
}

// TestCheckPhaseSpans is the ISSUE acceptance test for the profile:
// one span per pipeline phase, and a valid Chrome trace export.
func TestCheckPhaseSpans(t *testing.T) {
	prof := NewProfile()
	rep, err := Check(cleanHybrid, Options{Procs: 2, Seed: 1, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, sp := range rep.Spans {
		names = append(names, sp.Name)
	}
	want := "parse,static,instrument,execute,analyze,match"
	if strings.Join(names, ",") != want {
		t.Fatalf("spans = %v, want %s", names, want)
	}
	for _, sp := range rep.Spans {
		if sp.Name == "execute" && sp.VirtualNs != rep.Makespan {
			t.Errorf("execute span virtualNs = %d, want makespan %d", sp.VirtualNs, rep.Makespan)
		}
	}
	var buf bytes.Buffer
	if err := prof.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(rep.Spans) {
		t.Fatalf("trace has %d events, want %d", len(doc.TraceEvents), len(rep.Spans))
	}
}

// TestCheckDeadlockBlockedTable exercises the enriched deadlock error
// end to end: the structured per-rank table must be retrievable with
// errors.As from a deadlocking run.
func TestCheckDeadlockBlockedTable(t *testing.T) {
	const deadlockSrc = `
int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  double buf[1];
  MPI_Recv(buf, 1, MPI_ANY_SOURCE, 3, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  MPI_Finalize();
  return 0;
}`
	prog, err := Parse(deadlockSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBase(prog, Options{Procs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected a deadlock")
	}
	var found bool
	for _, e := range res.Errs {
		var de *mpi.DeadlockError
		if errors.As(e, &de) {
			found = true
			if len(de.Ops) == 0 {
				t.Fatal("DeadlockError has empty blocked-op table")
			}
			// The blocking receive surfaces as the MPI_Wait it is
			// implemented with, carrying the receive's selector.
			op := de.Ops[0]
			if op.Rank != 0 || op.Op != "MPI_Wait" {
				t.Errorf("blocked op = %+v, want rank 0 in MPI_Wait", op)
			}
			if !strings.Contains(e.Error(), "MPI_ANY_SOURCE") {
				t.Errorf("error text should render the wildcard source: %s", e.Error())
			}
		}
	}
	if !found {
		t.Fatalf("no DeadlockError among run errors: %v", res.Errs)
	}
}

// docStatNames parses the stat-name inventory tables of
// docs/OBSERVABILITY.md: the first backticked token of every table
// row. `interp.call.<Name>` is returned as the prefix pattern
// "interp.call.".
func docStatNames(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	inventory := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			inventory = strings.HasPrefix(line, "## Stat-name inventory")
			continue
		}
		if !inventory || !strings.HasPrefix(line, "| `") {
			continue
		}
		rest := line[len("| `"):]
		end := strings.IndexByte(rest, '`')
		if end < 0 {
			continue
		}
		name := rest[:end]
		if name == "interp.call.<Name>" {
			name = "interp.call."
		}
		names[name] = true
	}
	if len(names) == 0 {
		t.Fatal("no stat names parsed from docs/OBSERVABILITY.md")
	}
	return names
}

// runtimeStatNames collects the union of stat names registered by a
// set of runs chosen to touch every instrumented subsystem: a plain
// hybrid run, a perturbed run that records its schedule, the replay of
// that schedule, a crash-stop run (partial report), an RMA run under
// perturbation, and a live-introspected run (whose published snapshot
// carries the live.* counters).
func runtimeStatNames(t *testing.T) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	collectSnap := func(snap StatsSnapshot) {
		for n := range snap.Counters {
			names[n] = true
		}
		for n := range snap.Gauges {
			names[n] = true
		}
		for n := range snap.Histograms {
			names[n] = true
		}
	}
	collect := func(reg *StatsRegistry) { collectSnap(reg.Snapshot()) }

	rec := NewScheduleRecorder()
	runs := []struct {
		src  string
		opts Options
	}{
		{statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 1}},
		{statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 1, Chaos: ChaosPerturb(3), RecordSchedule: rec}},
		{statsInvariantSrc, Options{Procs: 2, Threads: 2, Seed: 1, Chaos: ChaosCrash(3, 1, 1)}},
		{racyRMASrc, Options{Procs: 2, Seed: 1, Chaos: ChaosPerturb(13)}},
	}
	for i, r := range runs {
		r.opts.Stats = NewStatsRegistry()
		if _, err := Check(r.src, r.opts); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		collect(r.opts.Stats)
	}
	schedule, err := rec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	reg := NewStatsRegistry()
	if _, err := Check(statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 1, ReplaySchedule: schedule, Stats: reg}); err != nil {
		t.Fatal(err)
	}
	collect(reg)

	// Live-introspected run: the handle's published snapshot is the
	// user registry merged with the plane's live.* counters, so those
	// names count as runtime-registered too.
	plane := live.NewPlane()
	liveReg := NewStatsRegistry()
	if _, err := Check(statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 1, Stats: liveReg, Live: plane}); err != nil {
		t.Fatal(err)
	}
	for _, h := range plane.Runs() {
		collectSnap(h.Snapshot())
	}
	return names
}

// TestStatsDocInventory is the doc-drift gate: every stat name
// registered at runtime must have a row in docs/OBSERVABILITY.md's
// inventory tables, and every documented name must be registered by
// the scenario runs — so the doc and the code cannot diverge silently.
func TestStatsDocInventory(t *testing.T) {
	doc := docStatNames(t)
	got := runtimeStatNames(t)

	inDoc := func(name string) bool {
		if doc[name] {
			return true
		}
		for pat := range doc {
			if strings.HasSuffix(pat, ".") && strings.HasPrefix(name, pat) {
				return true
			}
		}
		return false
	}
	for name := range got {
		if !inDoc(name) {
			t.Errorf("stat %q is registered at runtime but undocumented in docs/OBSERVABILITY.md", name)
		}
	}
	for name := range doc {
		if strings.HasSuffix(name, ".") {
			found := false
			for g := range got {
				if strings.HasPrefix(g, name) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("documented pattern %q matched no runtime stat", name)
			}
			continue
		}
		if !got[name] {
			t.Errorf("stat %q is documented in docs/OBSERVABILITY.md but never registered by the scenario runs", name)
		}
	}

	// The hotspot profile's curated counters are part of the same
	// contract: each must be a documented, runtime-registered stat, or
	// the -hotspots table would silently render stale names. The
	// explore.* entries are campaign stats documented in
	// docs/ROBUSTNESS.md and gated by TestExploreStatDocDrift — the
	// scenario runs here never run a campaign, so skip them.
	for _, name := range obs.HotCounterNames() {
		if strings.HasPrefix(name, "explore.") {
			continue
		}
		if !inDoc(name) {
			t.Errorf("hot counter %q is not in the documented inventory", name)
		}
		if !got[name] {
			t.Errorf("hot counter %q was never registered by the scenario runs", name)
		}
	}
}

// TestStatsNilRegistrySafe is the nil-is-off regression gate for every
// hook added by the chaos, RMA and record/replay layers: the same
// scenario matrix as the doc-drift test, each run with Stats == nil,
// must complete without panicking.
func TestStatsNilRegistrySafe(t *testing.T) {
	rec := NewScheduleRecorder()
	runs := []struct {
		name string
		src  string
		opts Options
	}{
		{"plain", statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 1}},
		{"perturb-record", statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 1, Chaos: ChaosPerturb(3), RecordSchedule: rec}},
		{"crash", statsInvariantSrc, Options{Procs: 2, Threads: 2, Seed: 1, Chaos: ChaosCrash(3, 1, 1)}},
		{"rma-perturb", racyRMASrc, Options{Procs: 2, Seed: 1, Chaos: ChaosPerturb(13)}},
		{"explain", statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 1, Explain: true}},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			if r.opts.Stats != nil {
				t.Fatal("scenario must run with a nil registry")
			}
			if _, err := Check(r.src, r.opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	schedule, err := rec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("replay", func(t *testing.T) {
		if _, err := Check(statsInvariantSrc, Options{Procs: 1, Threads: 2, Seed: 1, ReplaySchedule: schedule}); err != nil {
			t.Fatal(err)
		}
	})
}
