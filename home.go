// Package home is a Go reproduction of HOME, the hybrid OpenMP/MPI
// thread-safety checker of Ma, Wang and Krishnamoorthy, "Detecting
// Thread-Safety Violations in Hybrid OpenMP/MPI Programs" (IEEE
// CLUSTER 2015).
//
// HOME analyzes hybrid MPI/OpenMP programs in two phases. A static
// phase builds the program's control-flow graph, classifies code
// outside `omp parallel` regions as error-free, and replaces the MPI
// calls inside those regions with instrumented wrappers (selective
// monitoring keeps runtime overhead low). A dynamic phase executes the
// instrumented program, applies Eraser-style lockset analysis combined
// with vector-clock happens-before analysis to the monitored variables
// the wrappers write (srctmp, tagtmp, commtmp, requesttmp,
// collectivetmp, finalizetmp), and matches the resulting concurrency
// reports against the MPI thread-safety specification, yielding the
// six violation classes of the paper: initialization, finalization,
// concurrent receive, concurrent request, probe, and collective-call
// violations.
//
// Because Go has neither MPI nor OpenMP, this reproduction executes
// programs written in MiniHPC — a small C-like hybrid language with
// `#pragma omp` directives and MPI builtins — on a simulated cluster:
// a deterministic message-passing runtime (internal/mpi), a fork/join
// threading substrate (internal/omp), and a virtual-time cost model
// (internal/sim). See DESIGN.md for the full substitution map.
//
// # Quick start
//
//	report, err := home.Check(src, home.Options{Procs: 2, Threads: 2})
//	if err != nil { ... }
//	for _, v := range report.Violations {
//		fmt.Println(v)
//	}
//
// The package also exposes Parse, RunBase (uninstrumented execution
// for timing baselines) and the experiment harness used to regenerate
// the paper's tables and figures (internal/harness, cmd/homebench).
package home

import (
	"fmt"

	"home/internal/chaos"
	"home/internal/detect"
	"home/internal/explain"
	"home/internal/interp"
	"home/internal/minic"
	"home/internal/msgrace"
	"home/internal/obs"
	"home/internal/obs/live"
	"home/internal/sched"
	"home/internal/sim"
	"home/internal/spec"
	"home/internal/static"
	"home/internal/trace"
)

// Re-exported result types: the public API speaks in these names.
type (
	// Violation is a matched thread-safety violation.
	Violation = spec.Violation
	// ViolationKind enumerates the six violation classes.
	ViolationKind = spec.Kind
	// Race is a concurrency report on a monitored variable.
	Race = detect.Race
	// Plan is the static phase's instrumentation plan.
	Plan = static.Plan
	// Warning is a statically detected unsafe style.
	Warning = static.Warning
	// Program is a parsed MiniHPC translation unit.
	Program = minic.Program
	// AnalysisMode selects the dynamic analyses (combined by default).
	AnalysisMode = detect.Mode
	// CostModel is the virtual-time cost model.
	CostModel = sim.CostModel
	// StatsRegistry collects per-run counters, gauges and histograms
	// from every pipeline layer (see internal/obs and
	// docs/OBSERVABILITY.md).
	StatsRegistry = obs.Registry
	// StatsSnapshot is a point-in-time view of a StatsRegistry.
	StatsSnapshot = obs.Snapshot
	// Profile records the pipeline's phase spans (wall and virtual
	// durations), exportable as Chrome trace_event JSON.
	Profile = obs.Profile
	// Span is one completed pipeline phase.
	Span = obs.Span
	// ChaosPlan is a deterministic fault-injection plan for the
	// simulated cluster (see internal/chaos and docs/ROBUSTNESS.md).
	ChaosPlan = chaos.Plan
	// ScheduleRecorder accumulates a run's realized fault schedule —
	// every fault decision and nondeterministic resolution — as a
	// replayable artifact (see internal/sched and docs/ROBUSTNESS.md).
	ScheduleRecorder = sched.Recorder
	// Schedule is a recorded fault schedule loaded for replay.
	Schedule = sched.Schedule
	// Witness is the causal explanation of one verdict: the access or
	// call pair by schedule-stable coordinates, locksets with
	// acquisition sites, vector clocks, and the missing happens-before
	// edge (see internal/explain and docs/OBSERVABILITY.md).
	Witness = explain.Witness
	// TraceEvent is one instrumentation event of the run's log.
	TraceEvent = trace.Event
	// Timeline is an assembled per-(rank, thread) timeline of a run,
	// exportable as Chrome trace_event JSON (chrome://tracing,
	// Perfetto).
	Timeline = trace.Timeline
)

// BuildTimeline assembles the timeline for a run's event log
// (Report.Trace); overlay witnesses with OverlayWitnesses.
func BuildTimeline(events []TraceEvent) *Timeline { return trace.BuildTimeline(events) }

// OverlayWitnesses marks every witness site on the timeline with an
// instant event.
func OverlayWitnesses(t *Timeline, ws []Witness) { explain.Overlay(t, ws) }

// NewScheduleRecorder returns an empty schedule recorder to pass in
// Options.RecordSchedule.
func NewScheduleRecorder() *ScheduleRecorder { return sched.NewRecorder() }

// ReadScheduleFile loads a recorded schedule for Options.ReplaySchedule.
// A stream cut mid-record still returns the salvaged prefix together
// with an error unwrapping to sched.ErrTruncated.
func ReadScheduleFile(path string) (*Schedule, error) { return sched.ReadFile(path) }

// ChaosPerturb returns the default legal-perturbation chaos plan for a
// seed: message delays, queue reordering, transient send failures,
// sender jitter and short thread stalls — no crash. Verdicts must be
// stable under it.
func ChaosPerturb(seed int64) *ChaosPlan { return chaos.Perturb(seed) }

// ChaosCrash returns the perturbation plan plus a crash-stop of the
// given rank after its n-th MPI call; the resulting Report is partial.
func ChaosCrash(seed int64, rank int, n int64) *ChaosPlan { return chaos.Crash(seed, rank, n) }

// ParseChaosSpec parses the CLI -chaos specification syntax (e.g.
// "seed=3", "delay=0.5,crash=1@10") into a plan.
func ParseChaosSpec(spec string) (*ChaosPlan, error) { return chaos.ParseSpec(spec) }

// NewStatsRegistry returns an empty per-run stats registry to pass in
// Options.Stats.
func NewStatsRegistry() *StatsRegistry { return obs.NewRegistry() }

// NewProfile returns an empty phase-span profile to pass in
// Options.Profile.
func NewProfile() *Profile { return obs.NewProfile() }

// Violation kinds (paper §III-A).
const (
	InitializationViolation    = spec.InitializationViolation
	FinalizationViolation      = spec.FinalizationViolation
	ConcurrentRecvViolation    = spec.ConcurrentRecvViolation
	ConcurrentRequestViolation = spec.ConcurrentRequestViolation
	ProbeViolation             = spec.ProbeViolation
	CollectiveCallViolation    = spec.CollectiveCallViolation
	// WindowViolation is the one-sided (RMA) extension class, not one
	// of the paper's six.
	WindowViolation = spec.WindowViolation
)

// Analysis modes.
const (
	ModeCombined          = detect.ModeCombined
	ModeLocksetOnly       = detect.ModeLocksetOnly
	ModeHappensBeforeOnly = detect.ModeHappensBeforeOnly
)

// AllViolationKinds lists the six classes in paper order.
func AllViolationKinds() []ViolationKind { return spec.AllKinds() }

// Options configures a Check run.
type Options struct {
	// Procs is the number of MPI ranks to simulate (default 2).
	Procs int
	// Threads is the default OpenMP team size (default 2, as in the
	// paper's experiments).
	Threads int
	// Seed drives all deterministic randomness.
	Seed int64

	// Mode selects the dynamic analyses; the zero value is the
	// paper's combined lockset + happens-before configuration.
	Mode AnalysisMode

	// InstrumentAll disables the static error-free-region filter (the
	// overhead ablation of DESIGN.md).
	InstrumentAll bool
	// Interprocedural enables the future-work extension that follows
	// user function calls out of parallel regions.
	Interprocedural bool

	// EnforceThreadLevel makes the simulated MPI runtime faithfully
	// misbehave on calls that violate the provided thread level
	// (Figure 1 behaviour). Checking does not require it.
	EnforceThreadLevel bool

	// Costs overrides the base cost model (zero = defaults).
	Costs CostModel
	// MaxSteps bounds interpreted statements (0 = default).
	MaxSteps int64
	// MaxArrayElems bounds a single array declaration (0 = default);
	// fuzzing lowers it to keep memory bounded.
	MaxArrayElems int

	// Chaos, when non-nil, runs the program under deterministic fault
	// injection (message perturbation, crash-stop ranks, thread stalls;
	// see docs/ROBUSTNESS.md). Crash-stop plans yield partial reports.
	Chaos *ChaosPlan
	// WatchdogGraceNs is the deadlock watchdog's wall-clock grace for
	// all-blocked states containing injected transient stalls (0 =
	// default). Irrelevant without chaos stalls: detection stays exact.
	WatchdogGraceNs int64

	// RecordSchedule, when non-nil, records the run's realized fault
	// schedule (every fault decision and nondeterministic resolution)
	// into the given recorder; serialize it with its Write/WriteFile
	// methods. Combined with ReplaySchedule it re-records the replay's
	// realized schedule: forced decisions are echoed verbatim and any
	// live fallback past the forced prefix is captured, so a partially
	// divergent replay (a mutated or salvaged schedule) still yields a
	// complete, deterministically replayable recording.
	RecordSchedule *ScheduleRecorder
	// ReplaySchedule, when non-nil, replays a recorded schedule: the
	// run takes its chaos plan from the schedule header (Options.Chaos
	// is ignored), disables the seed-hash fault path, and forces the
	// recorded interleaving, reproducing the recorded Report verdicts.
	ReplaySchedule *Schedule

	// Explain extracts a causal witness for every race and violation
	// (Report.Witnesses) and retains the run's event log
	// (Report.Trace) for timeline export. The detector captures full
	// vector clocks per monitored access under this option and orders
	// race pairs canonically, so explained output is byte-stable
	// across host schedules for schedule-invariant programs.
	Explain bool

	// Stats, when non-nil, collects runtime counters from every layer
	// of the run; Report.Stats carries the final snapshot. Use one
	// registry per run.
	Stats *StatsRegistry
	// Live, when non-nil, registers the run on the process-wide
	// telemetry plane (internal/obs/live): phase transitions, periodic
	// stats-snapshot deltas and a per-(rank, tid) flight recorder
	// become observable over the -introspect HTTP/SSE server while the
	// run executes. Publication only reads run state — virtual time,
	// schedules and report bytes are identical with and without it.
	Live *live.Plane
	// LiveName labels the run on the telemetry plane ("program" when
	// empty). Purely cosmetic; it appears in /runs and SSE events.
	LiveName string
	// Profile, when non-nil, records a span per pipeline phase
	// (parse, static, instrument, execute, analyze, match);
	// Report.Spans carries the result.
	Profile *Profile
}

// HOME's own probe costs (virtual ns). The wrapper write is a fixed
// probe cost; the online lockset/vector-clock bookkeeping scales with
// the logarithm of the total thread count, because the analysis's
// vector clocks carry one component per thread and its shared state
// grows with the fleet. Calibrated on the NPB-MZ-style workloads so
// the end-to-end overhead lands in the paper's 16-45% band over
// 2..64 processes (see EXPERIMENTS.md).
const (
	homeEmitNs         = 100
	homeAnalysisBaseNs = 383
	homeAnalysisLogNs  = 994
)

// homeAnalysisNs is the per-event analysis cost at a given fleet size.
func homeAnalysisNs(procs, threads int) int64 {
	return homeAnalysisBaseNs + homeAnalysisLogNs*sim.Log2Ceil(procs*threads)
}

// Report is the outcome of a Check: the static plan and warnings, the
// dynamic concurrency reports, and the matched violations.
type Report struct {
	// Plan is the instrumentation plan (site list, checklist,
	// filtering statistics).
	Plan *Plan
	// Warnings are the static phase's unsafe-style reports.
	Warnings []Warning
	// Diagnostics are front-end semantic findings (undeclared
	// identifiers, arity mismatches, ...). They are reported, not
	// fatal: published hybrid codes — including the paper's own
	// Figure 2 listing with its stray private(i) — often carry such
	// blemishes, and the dynamic phase can still run.
	Diagnostics []minic.SemaError
	// Races are the concurrency reports on monitored variables.
	Races []Race
	// Violations are the matched thread-safety violations, sorted by
	// (kind, rank).
	Violations []Violation
	// Witnesses are the causal explanations — one per violation, in
	// the violations' order, then one per race no violation claimed.
	// Populated only under Options.Explain.
	Witnesses []Witness
	// Trace is the run's instrumentation event log, retained for
	// timeline export. Populated only under Options.Explain.
	Trace []TraceEvent

	// Makespan is the instrumented run's virtual execution time (ns).
	Makespan int64
	// Deadlocked reports whether the run ended in a global deadlock
	// (the analyses still run over the events collected up to that
	// point).
	Deadlocked bool
	// Output is the program's print output.
	Output string
	// RunErrors holds per-rank runtime errors (deadlock errors appear
	// here too).
	RunErrors []error
	// EventsAnalyzed counts instrumentation events processed.
	EventsAnalyzed int

	// Partial reports that one or more ranks crash-stopped (chaos fault
	// injection): the violations cover each rank's surviving prefix.
	Partial bool
	// DeadRanks lists the crash-stopped ranks, sorted.
	DeadRanks []int
	// RankCoverage summarizes, per rank, how much execution the
	// analyses observed (instrumentation events) and whether the rank
	// failed. Filled for every run — not only partial ones — so
	// cross-run aggregation needs no special cases.
	RankCoverage []RankCoverage

	// Stats is the run's observability snapshot (nil unless
	// Options.Stats was set).
	Stats *StatsSnapshot
	// Spans are the pipeline phase spans (nil unless Options.Profile
	// was set).
	Spans []Span
}

// RankCoverage is one rank's share of the observed execution: how many
// instrumentation events the analyses saw from it and whether it
// crash-stopped (making its coverage a prefix).
type RankCoverage struct {
	Rank   int  `json:"rank"`
	Events int  `json:"events"`
	Failed bool `json:"failed,omitempty"`
}

// ParseError wraps a front-end parse failure. Its string form keeps
// the established "parse: ..." shape.
type ParseError struct{ Err error }

func (e *ParseError) Error() string { return "parse: " + e.Err.Error() }
func (e *ParseError) Unwrap() error { return e.Err }

// HasViolation reports whether any violation of the given kind was
// found.
func (r *Report) HasViolation(kind ViolationKind) bool {
	for _, v := range r.Violations {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

// CountByKind tallies violations per class.
func (r *Report) CountByKind() map[ViolationKind]int {
	return spec.CountByKind(r.Violations)
}

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	s := fmt.Sprintf("HOME report: %d violation(s), %d race(s), %d/%d MPI call sites instrumented, %d events analyzed\n",
		len(r.Violations), len(r.Races), r.Plan.Instrumented, r.Plan.TotalMPICalls, r.EventsAnalyzed)
	if r.Deadlocked {
		s += "note: the run ended in a global deadlock (reported violations cover the execution prefix)\n"
	}
	if r.Partial {
		s += fmt.Sprintf("note: partial report — rank(s) %v crash-stopped; violations cover each rank's surviving prefix\n", r.DeadRanks)
		for _, c := range r.RankCoverage {
			state := "survived"
			if c.Failed {
				state = "crash-stopped"
			}
			s += fmt.Sprintf("coverage: rank %d: %d events observed (%s)\n", c.Rank, c.Events, state)
		}
	}
	for _, d := range r.Diagnostics {
		s += "diagnostic: " + d.Error() + "\n"
	}
	for _, w := range r.Warnings {
		s += "static warning: " + w.String() + "\n"
	}
	for _, v := range r.Violations {
		s += "violation: " + v.String() + "\n"
	}
	return s
}

// Parse parses MiniHPC source text.
func Parse(src string) (*Program, error) { return minic.Parse(src) }

// Check parses the source and runs the full HOME pipeline.
func Check(src string, opts Options) (*Report, error) {
	sp := opts.Profile.Start("parse")
	c, err := Compile(src)
	sp.End()
	if err != nil {
		return nil, err
	}
	return CheckCompiled(c, opts)
}

// CheckProgram runs the full HOME pipeline on a parsed program:
// static analysis, instrumented execution, combined dynamic analysis,
// and specification matching. Each call builds a fresh one-shot
// *Compiled handle, so the front-end runs (and its phase spans appear)
// exactly as they always have; callers that check the same program
// repeatedly should compile once (Compile/CompileProgram) and call
// CheckCompiled to skip the front-end after the first run.
func CheckProgram(prog *Program, opts Options) (*Report, error) {
	return CheckCompiled(CompileProgram(prog), opts)
}

// liveName labels a run for the telemetry plane.
func liveName(opts *Options) string {
	if opts.LiveName != "" {
		return opts.LiveName
	}
	return "program"
}

// livePlanLabel renders the run's chaos plan for the telemetry plane
// (the replay header's plan when replaying; "" without chaos).
func livePlanLabel(opts *Options) string {
	if opts.ReplaySchedule != nil {
		p := opts.ReplaySchedule.Plan()
		return p.String()
	}
	if opts.Chaos != nil {
		return opts.Chaos.String()
	}
	return ""
}

// liveVerdict summarizes a report for the telemetry plane's verdict
// event.
func liveVerdict(r *Report) string { return r.Verdict() }

// Verdict is the report's one-line outcome — "clean", "N violations",
// "partial:N violations" or "deadlock" — the same string the telemetry
// plane publishes as the run's verdict event and homeserve returns as
// the job verdict.
func (r *Report) Verdict() string {
	switch {
	case r.Deadlocked:
		return "deadlock"
	case r.Partial:
		return fmt.Sprintf("partial:%d violations", len(r.Violations))
	case len(r.Violations) > 0:
		return fmt.Sprintf("%d violations", len(r.Violations))
	default:
		return "clean"
	}
}

// resolveSched resolves the run's chaos plan and record/replay hooks
// from the options. Replay takes precedence: the plan embedded in the
// schedule header reconstructs the recorded injector exactly. Setting
// both ReplaySchedule and RecordSchedule re-records the *realized*
// schedule of the replay through an echo source: forced decisions are
// copied verbatim into the recorder (replay branches re-apply records
// without reaching the Observe hooks) while decisions past the forced
// prefix — where a mutated or truncated schedule lets execution
// diverge to live resolution — are captured by the hooks as usual.
// The re-recorded stream is a complete schedule of the run that
// actually happened, which is how the schedule-space explorer turns a
// diverging mutant into a deterministic repro.
func resolveSched(opts *Options) (*chaos.Plan, chaos.Recorder, chaos.Source) {
	if opts.ReplaySchedule != nil {
		plan := opts.ReplaySchedule.Plan()
		if opts.RecordSchedule != nil {
			opts.RecordSchedule.SetPlan(plan)
			return &plan, opts.RecordSchedule, sched.Echo(opts.ReplaySchedule, opts.RecordSchedule)
		}
		return &plan, nil, opts.ReplaySchedule
	}
	if opts.RecordSchedule != nil {
		if opts.Chaos != nil {
			opts.RecordSchedule.SetPlan(*opts.Chaos)
		}
		return opts.Chaos, opts.RecordSchedule, nil
	}
	return opts.Chaos, nil, nil
}

// replayForced samples the replay schedule's forced-decision counters
// (total and order-family subset) before a run, so per-run accounting
// tolerates schedule reuse.
func replayForced(opts *Options) (forced0, orderForced0 int64) {
	if opts.ReplaySchedule == nil {
		return 0, 0
	}
	return opts.ReplaySchedule.Forced(), opts.ReplaySchedule.OrderForced()
}

// recordSchedStats publishes the record/replay substrate's counters
// after a run (nil-safe registry).
//
// Stat names:
//
//	sched.records        realized-decision records captured this run
//	sched.order_records  subset of sched.records in the v2 order
//	                     families (collective membership, lock grants,
//	                     single elections, loop chunks)
//	sched.replay_forced  recorded decisions replay forced onto this run
//	sched.order_forced   subset of sched.replay_forced from the order
//	                     families (always 0 when replaying a v1 stream)
//	sched.bytes_v3       recorded schedule size in the v3 binary
//	                     container
func recordSchedStats(opts *Options, forced0, orderForced0 int64) {
	if opts.ReplaySchedule != nil {
		opts.Stats.Counter("sched.replay_forced").Add(opts.ReplaySchedule.Forced() - forced0)
		opts.Stats.Counter("sched.order_forced").Add(opts.ReplaySchedule.OrderForced() - orderForced0)
	}
	if opts.RecordSchedule != nil {
		opts.Stats.Counter("sched.records").Add(int64(opts.RecordSchedule.Len()))
		opts.Stats.Counter("sched.order_records").Add(int64(opts.RecordSchedule.OrderLen()))
		// Size of the run's schedule in the v3 binary container — the
		// artifact cost a `hometrace transcode` or WriteFileBinary
		// would pay, and the number the codec-size CI gate watches.
		opts.Stats.Counter("sched.bytes_v3").Add(int64(len(opts.RecordSchedule.BytesBinary())))
	}
}

// rankCoverage tallies the observed instrumentation events per rank.
func rankCoverage(procs int, events []trace.Event, dead []int) []RankCoverage {
	failed := make(map[int]bool, len(dead))
	for _, r := range dead {
		failed[r] = true
	}
	counts := make([]int, procs)
	for i := range events {
		if r := events[i].Rank; r >= 0 && r < procs {
			counts[r]++
		}
	}
	out := make([]RankCoverage, procs)
	for r := range out {
		out[r] = RankCoverage{Rank: r, Events: counts[r], Failed: failed[r]}
	}
	return out
}

// RunBase executes the program uninstrumented and returns its virtual
// makespan in nanoseconds — the "Base" series of the paper's figures.
func RunBase(prog *Program, opts Options) (*interp.Result, error) {
	if opts.Procs <= 0 {
		opts.Procs = 2
	}
	if opts.Threads <= 0 {
		opts.Threads = 2
	}
	chaosPlan, schedRec, schedSrc := resolveSched(&opts)
	forced0, orderForced0 := replayForced(&opts)
	res := interp.Run(prog, interp.Config{
		Procs:              opts.Procs,
		Threads:            opts.Threads,
		Seed:               opts.Seed,
		Costs:              opts.Costs,
		EnforceThreadLevel: opts.EnforceThreadLevel,
		MaxSteps:           opts.MaxSteps,
		MaxArrayElems:      opts.MaxArrayElems,
		Stats:              opts.Stats,
		Chaos:              chaosPlan,
		SchedRecorder:      schedRec,
		SchedSource:        schedSrc,
		WatchdogGraceNs:    opts.WatchdogGraceNs,
	})
	recordSchedStats(&opts, forced0, orderForced0)
	return res, nil
}

// MessageRace is a cross-rank message-nondeterminism report (see
// internal/msgrace).
type MessageRace = msgrace.Report

// MessageRaces runs the extension analysis for cross-rank message
// races (wildcard receives with competing senders). Unlike the
// thread-safety check it needs every point-to-point call observed, so
// it performs its own instrument-everything run.
func MessageRaces(prog *Program, opts Options) ([]MessageRace, error) {
	if opts.Procs <= 0 {
		opts.Procs = 2
	}
	if opts.Threads <= 0 {
		opts.Threads = 2
	}
	log := trace.NewLog()
	chaosPlan, schedRec, schedSrc := resolveSched(&opts)
	res := interp.Run(prog, interp.Config{
		Procs:           opts.Procs,
		Threads:         opts.Threads,
		Seed:            opts.Seed,
		Costs:           opts.Costs,
		MaxSteps:        opts.MaxSteps,
		MaxArrayElems:   opts.MaxArrayElems,
		Instrument:      func(int) bool { return true },
		Sink:            log,
		Chaos:           chaosPlan,
		SchedRecorder:   schedRec,
		SchedSource:     schedSrc,
		WatchdogGraceNs: opts.WatchdogGraceNs,
	})
	// A deadlocked or crash-truncated run still yields a usable prefix.
	_ = res
	return msgrace.Analyze(log.Events()), nil
}

// StaticOnly runs just the compile-time phase, returning the plan
// (site list, checklist, warnings) without executing the program.
func StaticOnly(src string, opts Options) (*Plan, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	return static.Analyze(prog, static.Options{
		InstrumentAll:   opts.InstrumentAll,
		Interprocedural: opts.Interprocedural,
	}), nil
}
