package home

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"home/internal/chaos"
	"home/internal/faults"
	"home/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// locksetRaceSrc races a pair of monitored-variable writes where one
// side holds the critical-section lock and the other does not: a
// lockset violation and a happens-before race at once, with an
// acquisition site to name in the witness.
const locksetRaceSrc = `int main() {
  int provided;
  MPI_Init_thread(MPI_THREAD_MULTIPLE, &provided);
  int rank = MPI_Comm_rank(MPI_COMM_WORLD);
  int size = MPI_Comm_size(MPI_COMM_WORLD);
  double buf[1];
  int peer;
  if (rank % 2 == 0) { peer = rank + 1; } else { peer = rank - 1; }
  #pragma omp parallel num_threads(2)
  {
    if (omp_get_thread_num() == 0) {
      #pragma omp critical
      {
        MPI_Send(buf, 1, peer, 7, MPI_COMM_WORLD);
        MPI_Recv(buf, 1, peer, 7, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
    }
    if (omp_get_thread_num() == 1) {
      MPI_Send(buf, 1, peer, 8, MPI_COMM_WORLD);
      MPI_Recv(buf, 1, peer, 8, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
  }
  MPI_Finalize();
  return 0;
}`

// witnessPrograms lists the golden-pinned witness subjects: the six
// paper violation kinds plus the lockset/HB race above.
func witnessPrograms() []struct{ name, src string } {
	cases := []struct{ name, src string }{}
	for _, k := range spec.AllKinds() {
		cases = append(cases, struct{ name, src string }{k.String(), faults.Program(k)})
	}
	cases = append(cases, struct{ name, src string }{"LocksetRace", locksetRaceSrc})
	return cases
}

// renderWitnesses runs the checker with explanation enabled and
// concatenates every witness rendering.
func renderWitnesses(t *testing.T, src string, opts Options) string {
	t.Helper()
	opts.Explain = true
	rep, err := Check(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, w := range rep.Witnesses {
		b.WriteString(w.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestWitnessGolden pins the complete witness output for each paper
// violation kind and for a lockset/HB race. The witnesses name the
// access pair by schedule-stable (rank, thread, index) coordinates,
// the locksets with their acquisition sites, and the missing
// happens-before edge — and they must not drift across host schedules
// (the checked-in bytes are the determinism contract). Regenerate
// deliberately with `go test -run WitnessGolden -update .`.
func TestWitnessGolden(t *testing.T) {
	for _, tc := range witnessPrograms() {
		t.Run(tc.name, func(t *testing.T) {
			got := renderWitnesses(t, tc.src, Options{Procs: 2, Threads: 2, Seed: 1})
			path := filepath.Join("testdata", "witness-"+tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("witness output drifted from %s:\ngot:\n%s", path, got)
			}
			// The golden must actually demonstrate the contract pieces;
			// a drifting regeneration that lost them should fail loudly.
			label := tc.name
			if label == "LocksetRace" {
				label = "race on" // unclaimed races carry no violation kind
			}
			for _, piece := range []string{label, "first:", "second:", "locks held:"} {
				if !strings.Contains(got, piece) {
					t.Errorf("witnesses lack %q", piece)
				}
			}
		})
	}
}

// TestWitnessLocksetNamesAcquisition asserts the lockset witness's
// distinguishing content directly (independent of the golden bytes):
// one side holds the critical lock with its acquisition site, the
// other holds nothing, and the missing-edge line says why the pair is
// unordered.
func TestWitnessLocksetNamesAcquisition(t *testing.T) {
	got := renderWitnesses(t, locksetRaceSrc, Options{Procs: 2, Threads: 2, Seed: 1})
	for _, piece := range []string{
		"locks held: $critical:$default (acquired at #",
		"no common lock protects the accesses",
		"no fork/join, barrier, or lock hand-off edge orders the pair",
	} {
		if !strings.Contains(got, piece) {
			t.Errorf("lockset witness lacks %q:\n%s", piece, got)
		}
	}
}

// TestWitnessStableAcrossRuns re-runs each subject several times: the
// witness output depends only on per-thread event streams, so it must
// be byte-identical run over run even though the host interleaving is
// not.
func TestWitnessStableAcrossRuns(t *testing.T) {
	for _, tc := range witnessPrograms() {
		first := renderWitnesses(t, tc.src, Options{Procs: 2, Threads: 2, Seed: 1})
		for i := 0; i < 4; i++ {
			if got := renderWitnesses(t, tc.src, Options{Procs: 2, Threads: 2, Seed: 1}); got != first {
				t.Fatalf("%s: run %d produced different witnesses", tc.name, i)
			}
		}
	}
}

// TestWitnessRecordReplayByteIdentical records a run under a
// perturbation chaos plan and replays its realized schedule: the
// witness output of the two runs must match byte for byte, and the
// sched.* stats must account for both sides.
func TestWitnessRecordReplayByteIdentical(t *testing.T) {
	src := faults.Program(spec.ConcurrentRecvViolation)

	rec := NewScheduleRecorder()
	recStats := NewStatsRegistry()
	recOpts := Options{
		Procs: 2, Threads: 2, Seed: 1, Explain: true,
		Chaos: chaos.Perturb(5), RecordSchedule: rec, Stats: recStats,
	}
	recRep, err := Check(src, recOpts)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := rec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if got := recStats.Snapshot().Get("sched.records"); got != int64(rec.Len()) || got == 0 {
		t.Errorf("sched.records = %d, want %d (nonzero)", got, rec.Len())
	}

	repStats := NewStatsRegistry()
	repOpts := Options{
		Procs: 2, Threads: 2, Seed: 1, Explain: true,
		ReplaySchedule: schedule, Stats: repStats,
	}
	repRep, err := Check(src, repOpts)
	if err != nil {
		t.Fatal(err)
	}
	if repStats.Snapshot().Get("sched.replay_forced") == 0 {
		t.Error("sched.replay_forced = 0 after replaying a nonempty schedule")
	}

	render := func(rep *Report) string {
		var b strings.Builder
		for _, w := range rep.Witnesses {
			b.WriteString(w.String())
			b.WriteString("\n")
		}
		return b.String()
	}
	recOut, repOut := render(recRep), render(repRep)
	if recOut == "" {
		t.Fatal("recorded run produced no witnesses")
	}
	if recOut != repOut {
		t.Errorf("replay witnesses differ from the recorded run:\nrecorded:\n%s\nreplayed:\n%s", recOut, repOut)
	}
}
