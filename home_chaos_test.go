package home

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"home/internal/faults"
	"home/internal/mpi"
	"home/internal/spec"
)

// TestCheckChaosCrashPartial exercises graceful degradation end to
// end: a crash-stop plan yields a partial report naming the dead rank
// with per-rank coverage, never an error or a panic.
func TestCheckChaosCrashPartial(t *testing.T) {
	rep, err := Check(cleanHybrid, Options{
		Procs: 4, Seed: 1,
		Chaos: ChaosCrash(3, 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("crash-stop run not marked Partial")
	}
	if len(rep.DeadRanks) != 1 || rep.DeadRanks[0] != 1 {
		t.Fatalf("DeadRanks = %v, want [1]", rep.DeadRanks)
	}
	if len(rep.RankCoverage) != 4 {
		t.Fatalf("RankCoverage has %d entries, want 4", len(rep.RankCoverage))
	}
	for _, c := range rep.RankCoverage {
		if c.Failed != (c.Rank == 1) {
			t.Fatalf("rank %d Failed=%v", c.Rank, c.Failed)
		}
	}
	if !strings.Contains(rep.Summary(), "partial report") {
		t.Fatalf("Summary missing partial note:\n%s", rep.Summary())
	}
}

// TestCheckChaosLegalPlanIsClean asserts a legal-only plan neither
// kills ranks nor invents violations on a correct program.
func TestCheckChaosLegalPlanIsClean(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rep, err := Check(cleanHybrid, Options{Procs: 4, Seed: 1, Chaos: ChaosPerturb(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Partial || len(rep.DeadRanks) != 0 {
			t.Fatalf("seed %d: legal plan produced a partial report", seed)
		}
		if rep.Deadlocked {
			t.Fatalf("seed %d: legal plan deadlocked a clean program", seed)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("seed %d: false positives under perturbation: %v", seed, rep.Violations)
		}
	}
}

// TestChaosWatchdogGraceNoFalsePositive pins the satellite
// requirement: injected slow-thread stalls that briefly leave every
// live thread blocked must NOT trip the deadlock watchdog when the
// configured grace outlives the stalls.
func TestChaosWatchdogGraceNoFalsePositive(t *testing.T) {
	plan := ChaosPerturb(11)
	plan.StallProb = 1 // stall at every decision point
	plan.StallWall = 5 * time.Millisecond
	rep, err := Check(cleanHybrid, Options{
		Procs: 2, Seed: 1,
		Chaos:           plan,
		WatchdogGraceNs: int64(2 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlocked {
		t.Fatal("watchdog tripped on transient injected stalls")
	}
	for _, rerr := range rep.RunErrors {
		if errors.Is(rerr, mpi.ErrDeadlock) {
			t.Fatalf("false-positive DeadlockError: %v", rerr)
		}
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("stall plan changed verdicts: %v", rep.Violations)
	}
}

// TestCheckChaosVerdictStability spot-checks the metamorphic property
// the harness soak sweeps in full: legal perturbations leave the
// confirmed violation set of a racy program unchanged.
func TestCheckChaosVerdictStability(t *testing.T) {
	racy := faults.Program(spec.ConcurrentRecvViolation)
	base, err := Check(racy, Options{Procs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := signatureOf(base)
	if len(want) == 0 {
		t.Fatal("baseline found no violations; the stability check is vacuous")
	}
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := Check(racy, Options{Procs: 2, Seed: 1, Chaos: ChaosPerturb(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := signatureOf(rep)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: verdict drift: baseline %v, perturbed %v", seed, want, got)
		}
	}
}

func signatureOf(rep *Report) []string {
	var sig []string
	for _, v := range rep.Violations {
		sig = append(sig, fmt.Sprintf("%s|%d|%v", v.Kind, v.Rank, v.Lines))
	}
	sort.Strings(sig)
	return sig
}
